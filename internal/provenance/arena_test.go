package provenance

import (
	"testing"
)

func TestInternerDenseIDs(t *testing.T) {
	in := NewInterner()
	if got := in.Intern("a"); got != 0 {
		t.Fatalf("first intern: got id %d, want 0", got)
	}
	if got := in.Intern("b"); got != 1 {
		t.Fatalf("second intern: got id %d, want 1", got)
	}
	if got := in.Intern("a"); got != 0 {
		t.Fatalf("re-intern: got id %d, want 0", got)
	}
	if in.Len() != 2 {
		t.Fatalf("Len: got %d, want 2", in.Len())
	}
	if id, ok := in.ID("b"); !ok || id != 1 {
		t.Fatalf("ID(b): got (%d, %v), want (1, true)", id, ok)
	}
	if _, ok := in.ID("zzz"); ok {
		t.Fatal("ID of an unknown annotation reported ok")
	}
	if in.Ann(0) != "a" || in.Ann(1) != "b" {
		t.Fatalf("Ann order: got %v", in.Annotations())
	}
}

func TestBitsetOps(t *testing.T) {
	b := NewBitset(130) // spans three words
	for _, i := range []int32{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("fresh bitset has bit %d set", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	b.Clear(64)
	if b.Get(64) {
		t.Fatal("bit 64 still set after Clear")
	}
	if !b.Get(63) || !b.Get(129) {
		t.Fatal("Clear(64) disturbed neighbouring bits")
	}
	b.Reset()
	for _, i := range []int32{0, 63, 64, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d survived Reset", i)
		}
	}
}

// TestArenaEvalMatchesAggEval checks the compiled arena against the
// reference tree evaluator on the plan fixture for every monoid, every
// truth assignment over the fixture's annotations, and both defaults
// for annotations outside the assignment.
func TestArenaEvalMatchesAggEval(t *testing.T) {
	for _, kind := range []AggKind{AggSum, AggMax, AggMin, AggCount} {
		g := planFixture(kind)
		ar := CompileArena(g)
		if ar == nil {
			t.Fatalf("%v: CompileArena returned nil for an *Agg", kind)
		}
		s := ar.NewScratch()
		bits := ar.NewTruths()
		for mask := 0; mask < 1<<len(planAnns); mask++ {
			for _, def := range []bool{false, true} {
				mv := planValuation(mask).(MapValuation)
				mv.Default = def
				v := mv
				want, ok := g.Eval(v).(Vector)
				if !ok {
					t.Fatalf("%v: Agg.Eval did not return a Vector", kind)
				}
				ar.FillTruths(bits, v.Truth)
				got := ar.Eval(bits, s)
				if !vecEqual(got, want) {
					t.Fatalf("%v mask=%d default=%v: arena %v != legacy %v",
						kind, mask, def, got, want)
				}
			}
		}
	}
}

// opaqueExpr is a polynomial node the arena compiler does not know.
type opaqueExpr struct{}

func (opaqueExpr) EvalNat(func(Annotation) int) int        { return 0 }
func (opaqueExpr) MapAnn(func(Annotation) Annotation) Expr { return opaqueExpr{} }
func (opaqueExpr) CollectAnns(map[Annotation]struct{})     {}
func (opaqueExpr) Size() int                               { return 1 }
func (opaqueExpr) Key() string                             { return "opaque" }
func (opaqueExpr) String() string                          { return "opaque" }

func TestCompileArenaRejects(t *testing.T) {
	if CompileArena(nil) != nil {
		t.Fatal("CompileArena(nil) returned a non-nil arena")
	}
	g := NewAgg(AggSum,
		Tensor{Prov: V("a"), Value: 1, Count: 1, Group: "g"},
		Tensor{Prov: Sum{Terms: []Expr{V("b"), opaqueExpr{}}}, Value: 2, Count: 1, Group: "g"},
	)
	if CompileArena(g) != nil {
		t.Fatal("CompileArena accepted an expression with an unknown node type")
	}
}

// TestArenaScratchReuse checks that one scratch gives identical results
// across repeated evaluations (no state leaks between folds).
func TestArenaScratchReuse(t *testing.T) {
	g := planFixture(AggSum)
	ar := CompileArena(g)
	s := ar.NewScratch()
	bits := ar.NewTruths()
	v := planValuation(13)
	ar.FillTruths(bits, v.Truth)
	first := ar.Eval(bits, s)
	for i := 0; i < 3; i++ {
		if got := ar.Eval(bits, s); !vecEqual(got, first) {
			t.Fatalf("iteration %d: %v != first eval %v", i, got, first)
		}
	}
}

// BenchmarkArenaEval / BenchmarkAggEval measure one full evaluation of
// the plan fixture through the compiled arena versus the recursive
// interface-dispatch evaluator. The pair is the microscopic view of the
// arena speedup; the end-to-end view lives in the step-scoring
// benchmarks of internal/distance.
func BenchmarkArenaEval(b *testing.B) {
	g := planFixture(AggSum)
	ar := CompileArena(g)
	s := ar.NewScratch()
	bits := ar.NewTruths()
	v := planValuation(13)
	ar.FillTruths(bits, v.Truth)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar.Eval(bits, s)
	}
}

func BenchmarkAggEval(b *testing.B) {
	g := planFixture(AggSum)
	v := planValuation(13)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Eval(v)
	}
}
