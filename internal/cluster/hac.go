// Package cluster is a from-scratch hierarchical agglomerative clustering
// (HAC) implementation — the "Clustering" competitor of Sec. 6.2. It
// supports the seven linkage criteria of the HAC library the paper used
// (single, complete, average, weighted average, centroid, median, Ward)
// via Lance–Williams dissimilarity updates, a Pearson-correlation
// dissimilarity for sparse rating vectors, and constraint-aware merging
// (the paper's modification that refuses to merge clusters whose members
// have nothing in common).
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Linkage selects the criterion determining the dissimilarity between
// clusters as a function of pairwise dissimilarities.
type Linkage int

// The supported linkage criteria. For Centroid, Median and Ward the
// input dissimilarity should be squared Euclidean for the textbook
// geometric interpretation; the Lance–Williams updates are applied to
// whatever dissimilarity is provided.
const (
	Single Linkage = iota
	Complete
	Average
	WeightedAverage
	Centroid
	Median
	Ward
)

func (l Linkage) String() string {
	switch l {
	case Single:
		return "single"
	case Complete:
		return "complete"
	case Average:
		return "average"
	case WeightedAverage:
		return "weighted-average"
	case Centroid:
		return "centroid"
	case Median:
		return "median"
	case Ward:
		return "ward"
	}
	return "?"
}

// Linkages lists all supported criteria.
func Linkages() []Linkage {
	return []Linkage{Single, Complete, Average, WeightedAverage, Centroid, Median, Ward}
}

// coefficients returns the Lance–Williams coefficients (αi, αj, β, γ)
// for merging clusters i and j (sizes ni, nj) as seen from cluster k
// (size nk).
func (l Linkage) coefficients(ni, nj, nk float64) (ai, aj, b, g float64) {
	switch l {
	case Single:
		return 0.5, 0.5, 0, -0.5
	case Complete:
		return 0.5, 0.5, 0, 0.5
	case Average:
		s := ni + nj
		return ni / s, nj / s, 0, 0
	case WeightedAverage:
		return 0.5, 0.5, 0, 0
	case Centroid:
		s := ni + nj
		return ni / s, nj / s, -(ni * nj) / (s * s), 0
	case Median:
		return 0.5, 0.5, -0.25, 0
	case Ward:
		s := ni + nj + nk
		return (ni + nk) / s, (nj + nk) / s, -nk / s, 0
	}
	return 0.5, 0.5, 0, 0
}

// Merge records one agglomeration step: clusters A and B (by cluster id)
// were fused into New at the given dissimilarity. MembersA and MembersB
// are the item indices each side contained before the merge.
type Merge struct {
	A, B, New          int
	Dissimilarity      float64
	MembersA, MembersB []int
}

// CanMerge decides whether two clusters (given as item-index sets) may be
// fused — the hook through which the paper's semantic constraints enter
// the clustering competitor. A nil CanMerge allows everything.
type CanMerge func(membersA, membersB []int) bool

// Dendrogram is the merge history of a clustering run.
type Dendrogram struct {
	// N is the number of initial singleton clusters (items 0..N-1);
	// merged clusters receive ids N, N+1, ... in merge order.
	N      int
	Merges []Merge
}

// Run performs bottom-up agglomerative clustering over n items with the
// given initial pairwise dissimilarity, linkage criterion, and optional
// merge constraint. It merges the closest allowed pair until no allowed
// pair remains (or a single cluster is left) and returns the dendrogram.
func Run(n int, dissim func(i, j int) float64, linkage Linkage, can CanMerge) (*Dendrogram, error) {
	if n < 0 {
		return nil, fmt.Errorf("cluster: negative item count %d", n)
	}
	d := &Dendrogram{N: n}
	if n < 2 {
		return d, nil
	}

	// active cluster state
	type clusterState struct {
		id      int
		members []int
	}
	active := make(map[int]*clusterState, n)
	order := make([]int, 0, n) // deterministic iteration
	for i := 0; i < n; i++ {
		active[i] = &clusterState{id: i, members: []int{i}}
		order = append(order, i)
	}

	// pairwise dissimilarity matrix, keyed by cluster id pairs
	dist := make(map[[2]int]float64)
	key := func(a, b int) [2]int {
		if a > b {
			a, b = b, a
		}
		return [2]int{a, b}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dist[key(i, j)] = dissim(i, j)
		}
	}

	nextID := n
	for len(active) > 1 {
		// find the minimal-dissimilarity allowed pair (deterministic scan)
		bestI, bestJ := -1, -1
		bestD := math.Inf(1)
		for x := 0; x < len(order); x++ {
			ci, ok := active[order[x]]
			if !ok {
				continue
			}
			for y := x + 1; y < len(order); y++ {
				cj, ok := active[order[y]]
				if !ok {
					continue
				}
				dd := dist[key(ci.id, cj.id)]
				if dd < bestD {
					if can != nil && !can(ci.members, cj.members) {
						continue
					}
					bestD = dd
					bestI, bestJ = ci.id, cj.id
				}
			}
		}
		if bestI < 0 {
			break // no allowed merges remain
		}

		ci, cj := active[bestI], active[bestJ]
		merged := &clusterState{
			id:      nextID,
			members: append(append([]int(nil), ci.members...), cj.members...),
		}
		sort.Ints(merged.members)
		d.Merges = append(d.Merges, Merge{
			A: bestI, B: bestJ, New: nextID,
			Dissimilarity: bestD,
			MembersA:      append([]int(nil), ci.members...),
			MembersB:      append([]int(nil), cj.members...),
		})

		// Lance–Williams update of distances to every other cluster.
		ni, nj := float64(len(ci.members)), float64(len(cj.members))
		dij := dist[key(bestI, bestJ)]
		for _, id := range order {
			ck, ok := active[id]
			if !ok || ck.id == bestI || ck.id == bestJ {
				continue
			}
			nk := float64(len(ck.members))
			ai, aj, b, g := linkage.coefficients(ni, nj, nk)
			dik := dist[key(bestI, ck.id)]
			djk := dist[key(bestJ, ck.id)]
			dist[key(nextID, ck.id)] = ai*dik + aj*djk + b*dij + g*math.Abs(dik-djk)
		}

		delete(active, bestI)
		delete(active, bestJ)
		active[nextID] = merged
		order = append(order, nextID)
		nextID++
	}
	return d, nil
}

// Clusters reconstructs the item partition after the first k merges of
// the dendrogram (k ≤ len(Merges)); k = len(Merges) yields the final
// partition. Clusters are returned sorted by their smallest member.
func (d *Dendrogram) Clusters(k int) [][]int {
	if k > len(d.Merges) {
		k = len(d.Merges)
	}
	parent := make(map[int]int)
	var find func(int) int
	find = func(x int) int {
		for {
			p, ok := parent[x]
			if !ok {
				return x
			}
			x = p
		}
	}
	for i := 0; i < k; i++ {
		m := d.Merges[i]
		parent[find(m.A)] = m.New
		parent[find(m.B)] = m.New
	}
	groups := make(map[int][]int)
	for i := 0; i < d.N; i++ {
		r := find(i)
		groups[r] = append(groups[r], i)
	}
	out := make([][]int, 0, len(groups))
	for _, g := range groups {
		sort.Ints(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// PearsonDissimilarity computes 1 − r over the keys common to two sparse
// vectors, where r is the Pearson correlation coefficient — the
// dissimilarity the paper uses between users' rating vectors. Pairs with
// fewer than two common keys or zero variance get the maximal
// dissimilarity 2 (corresponding to r = −1); the result lies in [0, 2].
func PearsonDissimilarity(a, b map[string]float64) float64 {
	var common []string
	for k := range a {
		if _, ok := b[k]; ok {
			common = append(common, k)
		}
	}
	if len(common) < 2 {
		return 2
	}
	n := float64(len(common))
	var sa, sb float64
	for _, k := range common {
		sa += a[k]
		sb += b[k]
	}
	ma, mb := sa/n, sb/n
	var cov, va, vb float64
	for _, k := range common {
		da, db := a[k]-ma, b[k]-mb
		cov += da * db
		va += da * da
		vb += db * db
	}
	if va == 0 || vb == 0 {
		return 2
	}
	r := cov / math.Sqrt(va*vb)
	return 1 - r
}

// EuclideanDissimilarity computes the squared Euclidean distance over the
// union of keys of two sparse vectors (missing keys count as 0) — the
// canonical input for the centroid/median/Ward linkages.
func EuclideanDissimilarity(a, b map[string]float64) float64 {
	total := 0.0
	for k, av := range a {
		dv := av - b[k]
		total += dv * dv
	}
	for k, bv := range b {
		if _, ok := a[k]; !ok {
			total += bv * bv
		}
	}
	return total
}
