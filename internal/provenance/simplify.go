package provenance

import "sort"

// SimplifyExpr rewrites e into a normal form using the semiring axioms
// and the guard congruences:
//
//   - nested sums and products are flattened,
//   - constants are folded (0 absorbs products, 1 is dropped from
//     products, 0 is dropped from sums),
//   - guards whose inner polynomial is a constant are resolved to 0 or 1,
//   - terms and factors are put in canonical (sorted) order so that Key
//     comparisons detect equality up to commutativity.
//
// Natural coefficients are preserved: a sum of n syntactically equal
// terms is represented as n copies (the semiring is N[Ann], not B[Ann]).
func SimplifyExpr(e Expr) Expr {
	switch n := e.(type) {
	case Var, Const:
		return e

	case Cmp:
		inner := SimplifyExpr(n.Inner)
		if c, ok := inner.(Const); ok {
			lhs := 0.0
			if c.N != 0 {
				lhs = n.Value
			}
			if n.Op.holds(lhs, n.Bound) {
				return Const{1}
			}
			return Const{0}
		}
		return Cmp{Inner: inner, Value: n.Value, Op: n.Op, Bound: n.Bound}

	case Prod:
		factors := make([]Expr, 0, len(n.Factors))
		coeff := 1
		// flatten recursively, folding constants found at any nesting level
		var walk func(Expr)
		walk = func(f Expr) {
			switch ff := f.(type) {
			case Const:
				coeff *= ff.N
			case Prod:
				for _, g := range ff.Factors {
					walk(g)
				}
			default:
				factors = append(factors, f)
			}
		}
		for _, f := range n.Factors {
			walk(SimplifyExpr(f))
			if coeff == 0 {
				return Const{0}
			}
		}
		if len(factors) == 0 {
			return Const{coeff}
		}
		if coeff != 1 {
			factors = append(factors, Const{coeff})
		}
		if len(factors) == 1 {
			return factors[0]
		}
		sort.Slice(factors, func(i, j int) bool { return factors[i].Key() < factors[j].Key() })
		return Prod{Factors: factors}

	case Sum:
		terms := make([]Expr, 0, len(n.Terms))
		coeff := 0
		var walk func(Expr)
		walk = func(t Expr) {
			switch tt := t.(type) {
			case Const:
				coeff += tt.N
			case Sum:
				for _, g := range tt.Terms {
					walk(g)
				}
			default:
				terms = append(terms, t)
			}
		}
		for _, t := range n.Terms {
			walk(SimplifyExpr(t))
		}
		if len(terms) == 0 {
			return Const{coeff}
		}
		if coeff != 0 {
			terms = append(terms, Const{coeff})
		}
		if len(terms) == 1 {
			return terms[0]
		}
		sort.Slice(terms, func(i, j int) bool { return terms[i].Key() < terms[j].Key() })
		return Sum{Terms: terms}
	}
	return e
}
