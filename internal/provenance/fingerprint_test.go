package provenance

import (
	"testing"
)

func TestFingerprintCommutativityInvariance(t *testing.T) {
	a := Sum{Terms: []Expr{V("a"), V("b"), Prod{Factors: []Expr{V("c"), V("d")}}}}
	b := Sum{Terms: []Expr{Prod{Factors: []Expr{V("d"), V("c")}}, V("b"), V("a")}}
	if FingerprintExpr(a) != FingerprintExpr(b) {
		t.Fatal("reordered Sum/Prod operands must fingerprint identically")
	}
	c := Sum{Terms: []Expr{V("a"), V("b"), Prod{Factors: []Expr{V("c"), V("c")}}}}
	if FingerprintExpr(a) == FingerprintExpr(c) {
		t.Fatal("distinct expressions must not share a fingerprint")
	}
}

func TestFingerprintAggTensorReordering(t *testing.T) {
	t1 := Tensor{Prov: V("u1"), Value: 3, Count: 1, Group: "m1"}
	t2 := Tensor{Prov: V("u2"), Value: 5, Count: 1, Group: "m1"}
	t3 := Tensor{Prov: P("u1", "u2"), Value: 4, Count: 2, Group: "m2"}
	a := NewAgg(AggMax, t1, t2, t3)
	b := NewAgg(AggMax, t3, t1, t2)
	if Fingerprint(a) != Fingerprint(b) {
		t.Fatal("⊕-reordered tensors must fingerprint identically")
	}
	// The congruence merges equal-polynomial tensors; the unsimplified
	// spelling must land on the same fingerprint as its normal form.
	split := &Agg{
		Agg: Aggregator{Kind: AggMax},
		Tensors: []Tensor{
			{Prov: V("u1"), Value: 3, Count: 1, Group: "m1"},
			{Prov: V("u2"), Value: 5, Count: 1, Group: "m1"},
			{Prov: P("u1", "u2"), Value: 4, Count: 2, Group: "m2"},
			{Prov: Const{0}, Value: 9, Count: 1, Group: "m3"}, // dropped by congruence
		},
	}
	if Fingerprint(a) != Fingerprint(split) {
		t.Fatal("fingerprint must be computed over the simplified normal form")
	}
}

func TestFingerprintSensitivity(t *testing.T) {
	base := NewAgg(AggMax, Tensor{Prov: V("u1"), Value: 3, Count: 1, Group: "m1"})
	mutants := []*Agg{
		NewAgg(AggSum, Tensor{Prov: V("u1"), Value: 3, Count: 1, Group: "m1"}), // agg kind
		NewAgg(AggMax, Tensor{Prov: V("u2"), Value: 3, Count: 1, Group: "m1"}), // annotation
		NewAgg(AggMax, Tensor{Prov: V("u1"), Value: 4, Count: 1, Group: "m1"}), // value
		NewAgg(AggMax, Tensor{Prov: V("u1"), Value: 3, Count: 2, Group: "m1"}), // count
		NewAgg(AggMax, Tensor{Prov: V("u1"), Value: 3, Count: 1, Group: "m2"}), // group
	}
	fp := Fingerprint(base)
	for i, m := range mutants {
		if Fingerprint(m) == fp {
			t.Fatalf("mutant %d fingerprints like the base expression", i)
		}
	}
}

func TestFingerprintEncodingUnambiguous(t *testing.T) {
	// Naive string-joining encodings confuse Sum{ab} with Sum{a,b};
	// length prefixes must keep them apart.
	a := Sum{Terms: []Expr{V("ab")}}
	b := Sum{Terms: []Expr{V("a"), V("b")}}
	if FingerprintExpr(a) == FingerprintExpr(b) {
		t.Fatal("length-prefixed encoding must distinguish ab from a,b")
	}
}

func TestUniverseFingerprint(t *testing.T) {
	u1 := NewUniverse()
	u1.Add("a", "users", Attrs{"gender": "F", "age": "18-24"})
	u1.Add("b", "users", Attrs{"gender": "M"})
	u2 := NewUniverse()
	u2.Add("b", "users", Attrs{"gender": "M"})
	u2.Add("a", "users", Attrs{"age": "18-24", "gender": "F"})
	anns := []Annotation{"a", "b"}
	if UniverseFingerprint(u1, anns) != UniverseFingerprint(u2, anns) {
		t.Fatal("registration order must not change the universe fingerprint")
	}
	if UniverseFingerprint(u1, []Annotation{"b", "a"}) != UniverseFingerprint(u1, anns) {
		t.Fatal("annotation argument order must not change the fingerprint")
	}
	u2.Add("a", "users", Attrs{"age": "18-24", "gender": "M"})
	if UniverseFingerprint(u1, anns) == UniverseFingerprint(u2, anns) {
		t.Fatal("changed attribute value must change the fingerprint")
	}
}

// reverseExpr rebuilds e with every operand list reversed — a structural
// equality (up to commutativity) the fingerprint must be blind to.
func reverseExpr(e Expr) Expr {
	switch x := e.(type) {
	case Sum:
		ts := make([]Expr, len(x.Terms))
		for i, t := range x.Terms {
			ts[len(ts)-1-i] = reverseExpr(t)
		}
		return Sum{Terms: ts}
	case Prod:
		fs := make([]Expr, len(x.Factors))
		for i, f := range x.Factors {
			fs[len(fs)-1-i] = reverseExpr(f)
		}
		return Prod{Factors: fs}
	case Cmp:
		return Cmp{Inner: reverseExpr(x.Inner), Value: x.Value, Op: x.Op, Bound: x.Bound}
	default:
		return e
	}
}

// mutateExpr flips one semantic detail of e (chosen by sel), returning
// the mutant and whether a mutation point was found.
func mutateExpr(e Expr, sel *int) (Expr, bool) {
	switch x := e.(type) {
	case Var:
		if *sel == 0 {
			return Var{Ann: x.Ann + "'"}, true
		}
		*sel--
		return x, false
	case Const:
		if *sel == 0 {
			return Const{N: x.N + 1}, true
		}
		*sel--
		return x, false
	case Sum:
		ts := make([]Expr, len(x.Terms))
		copy(ts, x.Terms)
		for i, t := range ts {
			if m, ok := mutateExpr(t, sel); ok {
				ts[i] = m
				return Sum{Terms: ts}, true
			}
		}
		return x, false
	case Prod:
		fs := make([]Expr, len(x.Factors))
		copy(fs, x.Factors)
		for i, f := range fs {
			if m, ok := mutateExpr(f, sel); ok {
				fs[i] = m
				return Prod{Factors: fs}, true
			}
		}
		return x, false
	case Cmp:
		if *sel == 0 {
			return Cmp{Inner: x.Inner, Value: x.Value + 1, Op: x.Op, Bound: x.Bound}, true
		}
		*sel--
		if m, ok := mutateExpr(x.Inner, sel); ok {
			return Cmp{Inner: m, Value: x.Value, Op: x.Op, Bound: x.Bound}, true
		}
		return x, false
	}
	return e, false
}

// FuzzFingerprint is the differential fuzzer of the content-address
// layer: for arbitrary expressions it checks that (1) structural
// equality up to commutativity implies equal fingerprints (operand
// reversal, tensor rotation), and (2) a semantic mutation changes the
// fingerprint unless simplification proves the mutant is the same
// normal form.
func FuzzFingerprint(f *testing.F) {
	f.Add([]byte{2, 1, 0, 3, 2, 4}, uint8(0))
	f.Add([]byte{4, 3, 2, 1, 0, 0, 1, 2, 3, 4}, uint8(3))
	f.Add([]byte{}, uint8(255))
	f.Fuzz(func(t *testing.T, data []byte, sel uint8) {
		pos := 0
		e := buildExpr(data, &pos, 4)
		fp := FingerprintExpr(e)

		if got := FingerprintExpr(reverseExpr(e)); got != fp {
			t.Fatalf("operand reversal changed fingerprint of %s", e)
		}
		if got := FingerprintExpr(SimplifyExpr(e)); got != FingerprintExpr(SimplifyExpr(reverseExpr(e))) {
			t.Fatalf("simplified forms of commuted %s disagree", e)
		}

		// An Agg wrapping the expression must be ⊕-rotation invariant.
		tensors := []Tensor{
			{Prov: e, Value: 1, Count: 1, Group: "g1"},
			{Prov: V("z"), Value: 2, Count: 1, Group: "g2"},
			{Prov: V("y"), Value: 3, Count: 1, Group: "g1"},
		}
		rotated := []Tensor{tensors[2], tensors[0], tensors[1]}
		if Fingerprint(NewAgg(AggMax, tensors...)) != Fingerprint(NewAgg(AggMax, rotated...)) {
			t.Fatalf("tensor rotation changed Agg fingerprint for %s", e)
		}

		selN := int(sel)
		mutant, ok := mutateExpr(e, &selN)
		if !ok {
			return
		}
		// The mutation is syntactic; if both sides simplify to the same
		// normal form (e.g. the mutated subterm was absorbed), equal
		// fingerprints are correct.
		if SimplifyExpr(mutant).Key() == SimplifyExpr(e).Key() {
			return
		}
		if FingerprintExpr(mutant) == fp {
			t.Fatalf("mutation did not change fingerprint: %s vs %s", e, mutant)
		}
	})
}
