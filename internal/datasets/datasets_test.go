package datasets

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/provenance"
)

func TestMovieLensGeneration(t *testing.T) {
	w := MovieLens(DefaultMovieLensConfig(), rand.New(rand.NewSource(1)))
	if w.Name != "movielens" || w.Prov.Size() == 0 {
		t.Fatal("empty workload")
	}
	// every annotation must be registered with a table
	for _, a := range w.Prov.Annotations() {
		if !w.Universe.Known(a) {
			t.Fatalf("annotation %s unregistered", a)
		}
		switch w.Universe.Table(a) {
		case MLUsersTable, MLMoviesTable, MLYearsTable:
		default:
			t.Fatalf("annotation %s in unexpected table %q", a, w.Universe.Table(a))
		}
	}
	// users carry all four constraint attributes
	for _, a := range w.Universe.InTable(MLUsersTable) {
		for _, attr := range []string{"gender", "age", "occupation", "zip"} {
			if w.Universe.Attr(a, attr) == "" {
				t.Fatalf("user %s lacks %s", a, attr)
			}
		}
	}
	if w.MaxError <= 0 {
		t.Fatal("MaxError must be positive")
	}
	if len(w.ClusterSteps) == 0 {
		t.Fatal("clustering competitor steps missing")
	}
	// tensor structure: (UserID·MovieTitle·MovieYear) products
	s := w.Prov.String()
	if !strings.Contains(s, "UID") || !strings.Contains(s, "Movie") || !strings.Contains(s, "Y19") && !strings.Contains(s, "Y20") {
		t.Fatalf("unexpected provenance shape: %.200s", s)
	}
}

func TestMovieLensDeterminism(t *testing.T) {
	a := MovieLens(DefaultMovieLensConfig(), rand.New(rand.NewSource(7)))
	b := MovieLens(DefaultMovieLensConfig(), rand.New(rand.NewSource(7)))
	if a.Prov.String() != b.Prov.String() {
		t.Fatal("generator must be deterministic per seed")
	}
	c := MovieLens(DefaultMovieLensConfig(), rand.New(rand.NewSource(8)))
	if a.Prov.String() == c.Prov.String() {
		t.Fatal("different seeds must differ")
	}
}

func TestMovieLensClasses(t *testing.T) {
	w := MovieLens(DefaultMovieLensConfig(), rand.New(rand.NewSource(2)))
	single := w.Class(CancelSingleAnnotation)
	if single.Len() != len(w.Prov.Annotations()) {
		t.Fatalf("cancel-single-annotation size = %d", single.Len())
	}
	attr := w.Class(CancelSingleAttribute)
	if attr.Len() == 0 {
		t.Fatal("cancel-single-attribute empty")
	}
	// estimator over either class must give 0 for the identity mapping
	for _, kind := range []ClassKind{CancelSingleAnnotation, CancelSingleAttribute} {
		est := w.Estimator(kind)
		id := provenance.NewMapping()
		d := est.Distance(w.Prov, w.Prov, id, provenance.GroupsOf(w.Prov.Annotations(), id))
		if d != 0 {
			t.Fatalf("identity distance under %s = %g", kind, d)
		}
	}
}

func TestMovieLensSummarizeEndToEnd(t *testing.T) {
	cfg := DefaultMovieLensConfig()
	cfg.Users, cfg.Movies = 10, 4
	w := MovieLens(cfg, rand.New(rand.NewSource(3)))
	s, err := core.New(core.Config{
		Policy:    w.Policy,
		Estimator: w.Estimator(CancelSingleAnnotation),
		WDist:     0.5, WSize: 0.5,
		MaxSteps: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Summarize(w.Prov)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Steps) == 0 {
		t.Fatal("no merges performed")
	}
	if sum.Expr.Size() >= w.Prov.Size() {
		t.Fatal("summary must shrink")
	}
	// constraint check: merged users share an attribute
	for _, members := range sum.Groups {
		if len(members) < 2 || w.Universe.Table(members[0]) != MLUsersTable {
			continue
		}
		shared := provenance.Shared([]provenance.Attrs{
			w.Universe.AttrsOf(members[0]), w.Universe.AttrsOf(members[1]),
		})
		if len(shared) == 0 {
			t.Fatalf("merged users share nothing: %v", members)
		}
	}
}

func TestWikipediaGeneration(t *testing.T) {
	w := Wikipedia(DefaultWikipediaConfig(), rand.New(rand.NewSource(4)))
	if w.Tax == nil {
		t.Fatal("taxonomy missing")
	}
	// pages hang in the taxonomy
	for _, p := range w.Universe.InTable(WikiPagesTable) {
		if !w.Tax.Contains(p) {
			t.Fatalf("page %s not in taxonomy", p)
		}
		if w.Universe.Attr(p, "concept") == "" {
			t.Fatalf("page %s lacks concept attribute", p)
		}
	}
	if w.Prov.Size() == 0 || len(w.ClusterSteps) == 0 {
		t.Fatal("workload incomplete")
	}
	// valuation classes must be taxonomy-consistent wrappers
	if !strings.Contains(w.Class(CancelSingleAnnotation).Name(), "consistent") {
		t.Fatal("class must be taxonomy-consistent")
	}
}

func TestWikipediaPageMergesUseLCA(t *testing.T) {
	w := Wikipedia(DefaultWikipediaConfig(), rand.New(rand.NewSource(4)))
	pages := w.Universe.InTable(WikiPagesTable)
	// find a mergeable page pair and check LCA naming
	for i := 0; i < len(pages); i++ {
		for j := i + 1; j < len(pages); j++ {
			if !w.Policy.CanMerge(pages[i], pages[j]) {
				continue
			}
			name := w.Policy.MergeName([]provenance.Annotation{pages[i], pages[j]})
			if !w.Tax.Contains(name) {
				t.Fatalf("merge name %s not a taxonomy concept", name)
			}
			if !w.Tax.IsAncestor(name, pages[i]) || !w.Tax.IsAncestor(name, pages[j]) {
				t.Fatalf("merge name %s is not a common ancestor", name)
			}
			return
		}
	}
	t.Skip("no mergeable page pair in this seed")
}

func TestWikipediaSummarizeEndToEnd(t *testing.T) {
	cfg := DefaultWikipediaConfig()
	cfg.Users, cfg.Pages = 8, 6
	w := Wikipedia(cfg, rand.New(rand.NewSource(6)))
	s, err := core.New(core.Config{
		Policy:    w.Policy,
		Estimator: w.Estimator(CancelSingleAnnotation),
		WDist:     1,
		MaxSteps:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Summarize(w.Prov)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Expr.Size() > w.Prov.Size() {
		t.Fatal("summary grew")
	}
	if sum.Dist < 0 || sum.Dist > 1 {
		t.Fatalf("normalized distance = %g", sum.Dist)
	}
}

func TestDDPWorkload(t *testing.T) {
	w := DDP(DefaultDDPConfig(), rand.New(rand.NewSource(11)))
	if w.ClusterSteps != nil {
		t.Fatal("DDP must have no clustering competitor")
	}
	if w.MaxError != 50 {
		t.Fatalf("penalty = %g, want 50", w.MaxError)
	}
	attr := w.Class(CancelSingleAttribute)
	if attr.Len() == 0 {
		t.Fatal("empty attribute class")
	}
	est := w.Estimator(CancelSingleAttribute)
	id := provenance.NewMapping()
	if d := est.Distance(w.Prov, w.Prov, id, provenance.GroupsOf(w.Prov.Annotations(), id)); d != 0 {
		t.Fatalf("identity distance = %g", d)
	}
}

func TestZipfSkew(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	counts := make([]int, 10)
	for i := 0; i < 5000; i++ {
		counts[zipf(r, 10)]++
	}
	if counts[0] <= counts[9] {
		t.Fatalf("zipf not skewed: first=%d last=%d", counts[0], counts[9])
	}
	if zipf(r, 1) != 0 || zipf(r, 0) != 0 {
		t.Fatal("degenerate zipf")
	}
}

func TestClassKindString(t *testing.T) {
	if CancelSingleAnnotation.String() == CancelSingleAttribute.String() {
		t.Fatal("class kind strings must differ")
	}
}
