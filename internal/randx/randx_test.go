package randx

import (
	"math/rand"
	"testing"
)

func TestDeterministicStream(t *testing.T) {
	a, b := NewSource(42), NewSource(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d diverged: %d != %d", i, av, bv)
		}
	}
	if NewSource(1).Uint64() == NewSource(2).Uint64() {
		t.Fatal("different seeds produced the same first draw")
	}
}

func TestStateRestoreMidStream(t *testing.T) {
	src := NewSource(7)
	r := rand.New(src)
	for i := 0; i < 100; i++ {
		r.Float64()
	}
	state := src.State()
	var want []float64
	for i := 0; i < 50; i++ {
		want = append(want, r.Float64())
	}
	// Restore into the same Rand: the tail replays identically.
	src.Restore(state)
	for i, w := range want {
		if got := r.Float64(); got != w {
			t.Fatalf("replayed draw %d = %v, want %v", i, got, w)
		}
	}
	// Restore into a fresh Rand (the cross-process resume shape).
	src2 := NewSource(0)
	src2.Restore(state)
	r2 := rand.New(src2)
	for i, w := range want {
		if got := r2.Float64(); got != w {
			t.Fatalf("fresh-rand draw %d = %v, want %v", i, got, w)
		}
	}
}

func TestShuffleReplays(t *testing.T) {
	r, src := New(99)
	state := src.State()
	perm := func() []int {
		p := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
		r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
		return p
	}
	want := perm()
	src.Restore(state)
	got := perm()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("shuffle diverged after restore: %v != %v", got, want)
		}
	}
}

func TestSpread(t *testing.T) {
	// Cheap sanity check that the generator is not obviously degenerate.
	src := NewSource(3)
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		seen[src.Uint64()] = true
	}
	if len(seen) != 1000 {
		t.Fatalf("only %d distinct draws in 1000", len(seen))
	}
}
