// Command prox-summarize generates a dataset workload, runs the PROX
// summarization algorithm on it, and prints the original expression, the
// merge trace, and the resulting summary with its groups.
//
// Usage:
//
//	prox-summarize [-dataset movielens] [-class annotation|attribute]
//	               [-wdist 0.5] [-wsize 0.5] [-steps 10]
//	               [-target-size 1] [-target-dist 1]
//	               [-scale 1] [-seed 1] [-v]
//	               [-arity 2] [-parallel 1] [-samples 0]
//	               [-scoring delta|batch|seq] [-legacy-eval]
//	               [-block-eval on|off]
//	               [-save bundle.json] [-load bundle.json] [-json out.json]
//	               [-extend-from summary.json] [-trace steps.jsonl]
//
// -scoring selects the candidate scoring engine: "delta" (default) probes
// candidates incrementally on the shared current expression, "batch"
// materializes every candidate and evaluates it in full, "seq" scores
// candidate-major with one Distance call each. All three choose
// bit-identical summaries. The deprecated -seq-scoring flag is an alias
// for -scoring=seq. -legacy-eval scores on the recursive tree evaluator
// instead of the compiled arena (implies -scoring=batch or seq); it
// exists for A/B comparison and chooses the same summaries.
// -block-eval=off disables the valuation-blocked kernel (64 valuations
// per word-level node op) in favor of one scalar arena pass per
// valuation — another bit-identical A/B switch.
//
// With -trace, every merge step of Algorithm 1 is appended to the given
// file as one JSON object per line (score, distance, size ratio,
// candidate count, probe wall time) while the algorithm runs — the same
// quantities the evaluation chapter aggregates, observable per step.
//
// With -extend-from, the run warm-starts from a previously exported
// summary (-json output): the prior partition's groups enter already
// merged and the search only looks for the merges the (typically
// extended) expression still needs. The printed trace shows the seed
// prefix followed by the run's own steps.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strings"

	"repro/internal/codec"
	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ddp"
	"repro/internal/distance"
	"repro/internal/provenance"
)

func main() {
	dataset := flag.String("dataset", "movielens", "movielens | wikipedia | ddp")
	class := flag.String("class", "annotation", "valuation class: annotation | attribute")
	wdist := flag.Float64("wdist", 0.5, "distance weight")
	wsize := flag.Float64("wsize", 0.5, "size weight")
	steps := flag.Int("steps", 10, "maximum algorithm steps (0 = unlimited)")
	targetSize := flag.Int("target-size", 1, "size bound (1 disables)")
	targetDist := flag.Float64("target-dist", 1, "distance bound (1 disables)")
	scale := flag.Float64("scale", 1, "dataset size multiplier")
	seed := flag.Int64("seed", 1, "generation seed")
	verbose := flag.Bool("v", false, "print full expressions")
	arity := flag.Int("arity", 2, "merge arity (>= 2; the Ch. 9 k-ary generalization)")
	parallel := flag.Int("parallel", 1, "candidate-evaluation goroutines")
	samples := flag.Int("samples", 0, "Monte-Carlo valuation samples per distance (0 = enumerate the class)")
	scoring := flag.String("scoring", "delta", "candidate scoring engine: delta (incremental, default) | batch (materialize every candidate) | seq (candidate-major)")
	seqScoring := flag.Bool("seq-scoring", false, "deprecated alias for -scoring=seq")
	legacyEval := flag.Bool("legacy-eval", false, "score on the recursive tree evaluator instead of the compiled arena (A/B switch; disables the delta engine)")
	blockEval := flag.String("block-eval", "on", "valuation-blocked evaluation kernel: on (64 valuations per word op, default) | off (one scalar arena pass per valuation); bit-identical either way")
	saveBundle := flag.String("save", "", "write the generated workload as a JSON bundle to this file")
	loadBundle := flag.String("load", "", "summarize a saved JSON bundle instead of generating a dataset")
	jsonOut := flag.String("json", "", "write the summary trace as JSON to this file (- for stdout)")
	extendFrom := flag.String("extend-from", "", "warm-start from a summary previously exported with -json: its groups seed the partition")
	traceOut := flag.String("trace", "", "stream per-step trace events as JSONL to this file (- for stdout)")
	flag.Parse()

	r := rand.New(rand.NewSource(*seed))
	var w *datasets.Workload
	switch {
	case *loadBundle != "":
		var err error
		w, err = workloadFromBundle(*loadBundle)
		if err != nil {
			fatal("load: %v", err)
		}
	case *dataset == "movielens":
		cfg := datasets.DefaultMovieLensConfig()
		cfg.Users = scaleInt(cfg.Users, *scale)
		cfg.Movies = scaleInt(cfg.Movies, *scale)
		w = datasets.MovieLens(cfg, r)
	case *dataset == "wikipedia":
		cfg := datasets.DefaultWikipediaConfig()
		cfg.Users = scaleInt(cfg.Users, *scale)
		cfg.Pages = scaleInt(cfg.Pages, *scale)
		w = datasets.Wikipedia(cfg, r)
	case *dataset == "ddp":
		cfg := datasets.DefaultDDPConfig()
		cfg.Executions = scaleInt(cfg.Executions, *scale)
		w = datasets.DDP(cfg, r)
	default:
		fatal("unknown dataset %q", *dataset)
	}

	kind := datasets.CancelSingleAnnotation
	if *class == "attribute" {
		kind = datasets.CancelSingleAttribute
	}

	fmt.Printf("dataset   : %s (seed %d)\n", w.Name, *seed)
	fmt.Printf("size      : %d annotations occurrences, %d distinct annotations\n",
		w.Prov.Size(), len(w.Prov.Annotations()))
	fmt.Printf("class     : %s\n", kind)
	if *verbose {
		fmt.Printf("provenance:\n%s\n", w.Prov)
	}

	if *saveBundle != "" {
		b := &codec.Bundle{Name: w.Name, Universe: w.Universe, Taxonomy: w.Tax}
		switch e := w.Prov.(type) {
		case *provenance.Agg:
			b.Agg = e
		case *ddp.Expr:
			b.DDP = e
		}
		f, err := os.Create(*saveBundle)
		if err != nil {
			fatal("save: %v", err)
		}
		if err := codec.Save(f, b); err != nil {
			f.Close()
			fatal("save: %v", err)
		}
		f.Close()
		fmt.Printf("workload bundle written to %s\n", *saveBundle)
	}

	est := w.Estimator(kind)
	if *samples > 0 {
		est.Samples = *samples
		est.Rand = rand.New(rand.NewSource(*seed + 1))
	}
	cfg := core.Config{
		Policy:      w.Policy,
		Estimator:   est,
		WDist:       *wdist,
		WSize:       *wsize,
		TargetSize:  *targetSize,
		TargetDist:  *targetDist,
		MaxSteps:    *steps,
		MergeArity:  *arity,
		Parallelism: *parallel,
	}
	if *seqScoring {
		*scoring = "seq"
	}
	switch *scoring {
	case "delta", "":
	case "batch":
		cfg.FullEvalScoring = true
	case "seq":
		cfg.SequentialScoring = true
	default:
		fatal("unknown -scoring %q (want delta, batch or seq)", *scoring)
	}
	cfg.LegacyEval = *legacyEval
	switch *blockEval {
	case "on", "":
	case "off":
		cfg.ScalarEval = true
	default:
		fatal("unknown -block-eval %q (want on or off)", *blockEval)
	}
	var traceClose func()
	if *traceOut != "" {
		var err error
		cfg.StepObserver, traceClose, err = traceObserver(*traceOut)
		if err != nil {
			fatal("trace: %v", err)
		}
	}
	var prior provenance.Groups
	if *extendFrom != "" {
		f, err := os.Open(*extendFrom)
		if err != nil {
			fatal("extend-from: %v", err)
		}
		prior, err = codec.ReadSummaryGroups(f)
		f.Close()
		if err != nil {
			fatal("extend-from: %v", err)
		}
		fmt.Printf("warm-start: %d seed groups from %s\n", len(prior), *extendFrom)
	}
	s, err := core.New(cfg)
	if err != nil {
		fatal("%v", err)
	}
	var sum *core.Summary
	if prior != nil {
		sum, err = s.Extend(context.Background(), w.Prov, prior)
	} else {
		sum, err = s.Summarize(w.Prov)
	}
	if traceClose != nil {
		traceClose()
	}
	if err != nil {
		fatal("%v", err)
	}
	if sum.ExtendedFrom > 0 {
		fmt.Printf("extended  : %d seed merges replayed, %d new steps\n",
			sum.ExtendedFrom, len(sum.Steps)-sum.ExtendedFrom)
	}
	if *traceOut != "" && *traceOut != "-" {
		fmt.Printf("step trace written to %s\n", *traceOut)
	}

	if *jsonOut != "" {
		out := os.Stdout
		if *jsonOut != "-" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatal("json: %v", err)
			}
			defer f.Close()
			out = f
		}
		if err := codec.WriteSummary(out, sum); err != nil {
			fatal("json: %v", err)
		}
		if *jsonOut != "-" {
			fmt.Printf("summary JSON written to %s\n", *jsonOut)
		}
	}

	fmt.Printf("\n--- merge trace (%d steps, stop: %s, %.1f ms) ---\n",
		len(sum.Steps), sum.StopReason, float64(sum.Elapsed.Microseconds())/1000)
	for i, st := range sum.Steps {
		parts := make([]string, len(st.Members))
		for j, m := range st.Members {
			parts[j] = string(m)
		}
		fmt.Printf("%3d. %s -> %s   (dist %.4f, size %d)\n",
			i+1, strings.Join(parts, " + "), st.New, st.Dist, st.Size)
	}

	fmt.Printf("\n--- summary ---\n")
	fmt.Printf("size %d (%.0f%% of original), distance %.4f\n",
		sum.Expr.Size(), 100*float64(sum.Expr.Size())/float64(w.Prov.Size()), sum.Dist)
	fmt.Printf("groups:\n")
	names := make([]string, 0, len(sum.Groups))
	for name := range sum.Groups {
		names = append(names, string(name))
	}
	sort.Strings(names)
	for _, name := range names {
		members := sum.Groups[provenance.Annotation(name)]
		if len(members) < 2 {
			continue
		}
		fmt.Printf("  %s = %v\n", name, members)
	}
	if *verbose {
		fmt.Printf("\nexpression:\n%s\n", sum.Expr)
	}
}

// traceEvent is the JSONL projection of one core.StepEvent.
type traceEvent struct {
	Step          int      `json:"step"`
	Members       []string `json:"members"`
	New           string   `json:"new"`
	Score         float64  `json:"score"`
	RDist         float64  `json:"rDist"`
	RSize         float64  `json:"rSize"`
	Size          int      `json:"size"`
	Candidates    int      `json:"candidates"`
	CandidateTime float64  `json:"candidateTimeMs"`
	Elapsed       float64  `json:"elapsedMs"`
}

// traceObserver returns a StepObserver streaming JSONL events to path
// ("-" for stdout) and a close function to flush the file.
func traceObserver(path string) (core.StepObserver, func(), error) {
	out := os.Stdout
	closeFn := func() {}
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return nil, nil, err
		}
		out = f
		closeFn = func() { f.Close() }
	}
	enc := json.NewEncoder(out)
	obs := func(ev core.StepEvent) {
		members := make([]string, len(ev.Members))
		for i, m := range ev.Members {
			members[i] = string(m)
		}
		_ = enc.Encode(traceEvent{
			Step:          ev.Step,
			Members:       members,
			New:           string(ev.New),
			Score:         ev.Score,
			RDist:         ev.RDist,
			RSize:         ev.RSize,
			Size:          ev.Size,
			Candidates:    ev.Candidates,
			CandidateTime: float64(ev.CandidateTime.Microseconds()) / 1000,
			Elapsed:       float64(ev.Elapsed.Microseconds()) / 1000,
		})
	}
	return obs, closeFn, nil
}

// workloadFromBundle builds a summarizable workload from a saved bundle:
// the expression and universe come from the file; constraints default to
// same-table plus any-shared-attribute; distances use the Euclidean
// VAL-FUNC (aggregated expressions) or the DDP cost difference.
func workloadFromBundle(path string) (*datasets.Workload, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	b, err := codec.Load(f)
	if err != nil {
		return nil, err
	}
	u := b.Universe
	if u == nil {
		u = provenance.NewUniverse()
	}
	w := &datasets.Workload{
		Name:     b.Name,
		Universe: u,
		Tax:      b.Taxonomy,
	}
	if w.Name == "" {
		w.Name = "bundle:" + path
	}
	pol := constraints.NewPolicy(u, constraints.SameTable(), constraints.SharedAttr())
	if b.Taxonomy != nil {
		pol = pol.WithTaxonomy(b.Taxonomy)
	}
	w.Policy = pol
	if b.Agg != nil {
		w.Prov = b.Agg
		w.VF = distance.Euclidean()
		if vec, ok := b.Agg.Eval(provenance.AllTrue).(provenance.Vector); ok {
			total := 0.0
			for _, v := range vec {
				total += v * v
			}
			if total > 0 {
				w.MaxError = math.Sqrt(total)
			}
		}
	} else {
		w.Prov = b.DDP
		w.VF = ddp.ValFunc(b.DDP.Penalty())
		w.MaxError = b.DDP.Penalty()
	}
	// collect every attribute name for the attribute-cancelling class
	attrs := map[string]bool{}
	for _, a := range u.Annotations() {
		for k := range u.AttrsOf(a) {
			attrs[k] = true
		}
	}
	for k := range attrs {
		w.AttrNames = append(w.AttrNames, k)
	}
	sort.Strings(w.AttrNames)
	return w, nil
}

func scaleInt(base int, scale float64) int {
	v := int(float64(base) * scale)
	if v < 2 {
		v = 2
	}
	return v
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prox-summarize: "+format+"\n", args...)
	os.Exit(1)
}
