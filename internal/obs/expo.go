package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
)

// WriteText writes every family in Prometheus text exposition format
// (version 0.0.4): families in registration order, series in label order,
// histograms as cumulative _bucket/_sum/_count series. Buckets carrying
// an exemplar append it in OpenMetrics syntax
// (`# {trace_id="..."} value timestamp`), which Prometheus ingests when
// exemplar storage is enabled and plain-text consumers ignore.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, name := range r.order {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()

	for _, fam := range fams {
		if fam.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", fam.name, escapeHelp(fam.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", fam.name, fam.kind); err != nil {
			return err
		}
		for _, s := range fam.series {
			if err := writeSeries(w, fam, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, fam *family, s *series) error {
	switch v := s.value.(type) {
	case *Counter:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, labelString(s.labels, "", ""), formatValue(v.Value()))
		return err
	case *Gauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", fam.name, labelString(s.labels, "", ""), formatValue(v.Value()))
		return err
	case *Histogram:
		var cum uint64
		for i, b := range v.bounds {
			cum += v.buckets[i].Load()
			if err := writeBucket(w, fam.name, s.labels, formatValue(b), cum, v.exemplars[i].Load()); err != nil {
				return err
			}
		}
		if err := writeBucket(w, fam.name, s.labels, "+Inf", v.Count(), v.exemplars[len(v.bounds)].Load()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", fam.name, labelString(s.labels, "", ""), formatValue(v.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", fam.name, labelString(s.labels, "", ""), v.Count())
		return err
	}
	return nil
}

// writeBucket emits one cumulative histogram bucket line, with its
// exemplar appended in OpenMetrics syntax when one is present.
func writeBucket(w io.Writer, name string, labels Labels, le string, cum uint64, ex *exemplar) error {
	if ex == nil {
		_, err := fmt.Fprintf(w, "%s_bucket%s %d\n", name, labelString(labels, "le", le), cum)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket%s %d # {trace_id=\"%s\"} %s %s\n",
		name, labelString(labels, "le", le), cum,
		escapeLabelValue(ex.trace), formatValue(ex.value),
		strconv.FormatFloat(float64(ex.ts.UnixNano())/1e9, 'f', 3, 64))
	return err
}

// labelString renders {k="v",...}, optionally appending an extra label
// (the histogram le bound, already formatted). Returns "" when there are
// no labels at all.
func labelString(labels Labels, extraName, extraVal string) string {
	names := make([]string, 0, len(labels))
	for k := range labels {
		names = append(names, k)
	}
	sort.Strings(names)
	var parts []string
	for _, k := range names {
		parts = append(parts, k+`="`+escapeLabelValue(labels[k])+`"`)
	}
	if extraName != "" {
		parts = append(parts, extraName+`="`+escapeLabelValue(extraVal)+`"`)
	}
	if len(parts) == 0 {
		return ""
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// escapeLabelValue escapes exactly what the exposition format requires
// in label values: backslash, double quote and newline. Anything else —
// tabs, UTF-8 — passes through verbatim (unlike strconv.Quote, which
// would over-escape and corrupt non-ASCII label values).
func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 8)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// formatValue renders a sample value the way Prometheus clients do:
// shortest round-trip representation, with NaN/+Inf/-Inf spelled the
// way the format requires.
func formatValue(v float64) string {
	// strconv renders infinities as "+Inf"/"-Inf" and NaN as "NaN",
	// which matches the exposition format exactly.
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeHelp escapes newlines and backslashes in HELP text per the
// exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format — mount it at /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteText(w)
	})
}
