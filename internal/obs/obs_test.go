package obs

import (
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("prox_events_total", "events", nil)
	c.Inc()
	c.Add(2.5)
	c.Add(-10) // ignored: counters are monotone
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter = %g, want 3.5", got)
	}
	g := r.Gauge("prox_level", "level", nil)
	g.Set(10)
	g.Add(-3)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %g, want 7", got)
	}
	// same name+labels returns the same handle
	if r.Counter("prox_events_total", "events", nil) != c {
		t.Fatal("counter lookup is not idempotent")
	}
	if r.Gauge("prox_level", "level", nil) != g {
		t.Fatal("gauge lookup is not idempotent")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("prox_lat_seconds", "latency", []float64{0.01, 0.1, 1}, nil)
	for _, v := range []float64{0.005, 0.05, 0.5, 5} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 5.555 {
		t.Fatalf("sum = %g, want 5.555", h.Sum())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`prox_lat_seconds_bucket{le="0.01"} 1`,
		`prox_lat_seconds_bucket{le="0.1"} 2`,
		`prox_lat_seconds_bucket{le="1"} 3`,
		`prox_lat_seconds_bucket{le="+Inf"} 4`,
		`prox_lat_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition lacks %q:\n%s", want, out)
		}
	}
}

func TestConcurrentInstrumentation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("prox_hits_total", "hits", nil)
	g := r.Gauge("prox_inflight", "in flight", nil)
	h := r.Histogram("prox_dur_seconds", "duration", nil, nil)

	const workers, iters = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				c.Inc()
				g.Inc()
				h.Observe(0.001)
				g.Dec()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*iters {
		t.Fatalf("counter = %g, want %d", got, workers*iters)
	}
	if got := g.Value(); got != 0 {
		t.Fatalf("gauge = %g, want 0", got)
	}
	if got := h.Count(); got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
}

// TestConcurrentRegistration exercises lookup races: get-or-create from
// many goroutines must converge on one series per (name, labels).
func TestConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Counter("prox_shared_total", "shared", Labels{"route": "/api"}).Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("prox_shared_total", "shared", Labels{"route": "/api"}).Value(); got != 800 {
		t.Fatalf("shared counter = %g, want 800", got)
	}
}

// TestExpositionGolden pins the full Prometheus text format: HELP/TYPE
// headers, registration-ordered families, label-sorted series.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("prox_http_requests_total", "HTTP requests by route.", Labels{"route": "/api/select", "code": "2xx"}).Add(3)
	r.Counter("prox_http_requests_total", "HTTP requests by route.", Labels{"route": "/api/select", "code": "4xx"}).Inc()
	r.Gauge("prox_sessions", "Sessions in memory.", nil).Set(2)
	h := r.Histogram("prox_req_seconds", "Request latency.", []float64{0.1, 1}, nil)
	h.Observe(0.05)
	h.Observe(0.5)

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP prox_http_requests_total HTTP requests by route.
# TYPE prox_http_requests_total counter
prox_http_requests_total{code="2xx",route="/api/select"} 3
prox_http_requests_total{code="4xx",route="/api/select"} 1
# HELP prox_sessions Sessions in memory.
# TYPE prox_sessions gauge
prox_sessions 2
# HELP prox_req_seconds Request latency.
# TYPE prox_req_seconds histogram
prox_req_seconds_bucket{le="0.1"} 1
prox_req_seconds_bucket{le="1"} 2
prox_req_seconds_bucket{le="+Inf"} 2
prox_req_seconds_sum 0.55
prox_req_seconds_count 2
`
	if sb.String() != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", sb.String(), want)
	}
}

func TestHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("prox_ok_total", "", nil).Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "prox_ok_total 1") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

func TestKindConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("prox_x", "", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("gauge registration over a counter name must panic")
		}
	}()
	r.Gauge("prox_x", "", nil)
}
