package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/provenance"
)

func sessionRec(id string) *codec.SessionRecord {
	return &codec.SessionRecord{
		ID: id,
		Prov: provenance.NewAgg(provenance.AggSum,
			provenance.Tensor{Prov: provenance.V("a"), Value: 1, Count: 1, Group: "g"}),
		Universe: []codec.UniverseEntry{{Ann: "a", Table: "t"}},
	}
}

func jobRec(id, sessionID, state string) *codec.JobRecord {
	return &codec.JobRecord{
		ID: id, SessionID: sessionID, State: state,
		Params: codec.JobParams{WDist: 0.5, WSize: 0.5, Steps: 3},
	}
}

func checkpointRec(jobID string, step int) *codec.CheckpointRecord {
	steps := make([]core.Step, step)
	for i := range steps {
		steps[i] = core.Step{
			A: "a", B: "b",
			Members: []provenance.Annotation{"a", "b"},
			New:     "ab", Dist: 0.1,
		}
	}
	return &codec.CheckpointRecord{
		JobID:      jobID,
		Checkpoint: &core.Checkpoint{Step: step, Steps: steps, InitDist: 0.05},
	}
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// TestReopenRestoresState pins the core durability contract: everything
// appended before a clean close is replayed on reopen, with last-write-
// wins per key and first-append ordering.
func TestReopenRestoresState(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for _, err := range []error{
		s.PutSession(sessionRec("s1")),
		s.PutSession(sessionRec("s2")),
		s.PutJob(jobRec("j1", "s1", JobStateQueued)),
		s.PutJob(jobRec("j2", "s2", JobStateQueued)),
		s.PutJob(jobRec("j1", "s1", JobStateRunning)),
		s.PutCheckpoint(checkpointRec("j1", 1)),
		s.PutCheckpoint(checkpointRec("j1", 2)),
		s.PutSummary(&codec.SummaryRecord{SessionID: "s2", Dist: 0.3, StopReason: "max-steps"}),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := mustOpen(t, dir, Options{})
	st := s2.State()
	if len(st.Sessions) != 2 || st.Sessions[0].ID != "s1" || st.Sessions[1].ID != "s2" {
		t.Fatalf("sessions = %+v", st.Sessions)
	}
	if len(st.Jobs) != 2 || st.Jobs[0].ID != "j1" || st.Jobs[0].State != JobStateRunning || st.Jobs[1].ID != "j2" {
		t.Fatalf("jobs = %+v", st.Jobs)
	}
	cp, ok := st.Checkpoints["j1"]
	if !ok || cp.Checkpoint.Step != 2 {
		t.Fatalf("checkpoint = %+v, want latest (step 2)", cp)
	}
	if sum, ok := st.Summaries["s2"]; !ok || sum.Dist != 0.3 {
		t.Fatalf("summary = %+v", st.Summaries)
	}
}

// TestDropSessionCascades pins that evicting a session drops its
// summary, jobs and checkpoints on replay.
func TestDropSessionCascades(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for _, err := range []error{
		s.PutSession(sessionRec("s1")),
		s.PutSession(sessionRec("s2")),
		s.PutJob(jobRec("j1", "s1", JobStateRunning)),
		s.PutCheckpoint(checkpointRec("j1", 1)),
		s.PutSummary(&codec.SummaryRecord{SessionID: "s1", Dist: 0.1}),
		s.DropSession("s1"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	st := mustOpen(t, dir, Options{}).State()
	if len(st.Sessions) != 1 || st.Sessions[0].ID != "s2" {
		t.Fatalf("sessions = %+v", st.Sessions)
	}
	if len(st.Jobs) != 0 || len(st.Checkpoints) != 0 || len(st.Summaries) != 0 {
		t.Fatalf("drop did not cascade: %+v %+v %+v", st.Jobs, st.Checkpoints, st.Summaries)
	}
}

// TestTerminalJobDropsCheckpoint pins that a terminal state transition
// retires the job's checkpoint.
func TestTerminalJobDropsCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for _, err := range []error{
		s.PutSession(sessionRec("s1")),
		s.PutJob(jobRec("j1", "s1", JobStateRunning)),
		s.PutCheckpoint(checkpointRec("j1", 1)),
		s.PutJob(jobRec("j1", "s1", JobStateDone)),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if st := s.State(); len(st.Checkpoints) != 0 {
		t.Fatalf("checkpoints = %+v, want none after terminal state", st.Checkpoints)
	}
	s.Close()
	if st := mustOpen(t, dir, Options{}).State(); len(st.Checkpoints) != 0 {
		t.Fatalf("replayed checkpoints = %+v, want none", st.Checkpoints)
	}
}

// TestCacheEntryLifecycle pins the summary-cache persistence contract:
// entries replay in first-append order with last-write-wins per key,
// drops remove single entries, a flush clears everything, and entries
// survive compaction.
func TestCacheEntryLifecycle(t *testing.T) {
	entry := func(key string, dist float64) *codec.CacheEntryRecord {
		return &codec.CacheEntryRecord{
			Key: key, Class: "cancel-single",
			Steps: []codec.StepRecord{{
				Members: []string{"a", "b"}, New: "ab", Dist: dist, Size: 2,
			}},
			Dist: dist, StopReason: "max-steps", CreatedMS: 100,
		}
	}

	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for _, err := range []error{
		s.PutCacheEntry(entry("k1", 0.1)),
		s.PutCacheEntry(entry("k2", 0.2)),
		s.PutCacheEntry(entry("k3", 0.3)),
		s.PutCacheEntry(entry("k1", 0.15)), // refresh keeps first-append order
		s.DropCacheEntry("k2"),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	s2 := mustOpen(t, dir, Options{})
	st := s2.State()
	if len(st.CacheEntries) != 2 || st.CacheEntries[0].Key != "k1" || st.CacheEntries[1].Key != "k3" {
		t.Fatalf("cache entries = %+v, want k1 then k3", st.CacheEntries)
	}
	if st.CacheEntries[0].Dist != 0.15 {
		t.Fatalf("k1 dist = %v, want refreshed 0.15", st.CacheEntries[0].Dist)
	}

	// Entries survive compaction.
	if err := s2.Compact(); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	s3 := mustOpen(t, dir, Options{})
	if st := s3.State(); len(st.CacheEntries) != 2 {
		t.Fatalf("post-compact cache entries = %+v", st.CacheEntries)
	}

	// A flush clears everything, durably.
	if err := s3.FlushCache(); err != nil {
		t.Fatal(err)
	}
	s3.Close()
	if st := mustOpen(t, dir, Options{}).State(); len(st.CacheEntries) != 0 {
		t.Fatalf("post-flush cache entries = %+v, want none", st.CacheEntries)
	}
}

// TestTornTailTruncated simulates a crash mid-append: garbage (or a
// partial frame) at the end of the log is discarded on open, the file is
// truncated back to the last whole record, and appends continue cleanly.
func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.PutSession(sessionRec("s1")); err != nil {
		t.Fatal(err)
	}
	if err := s.PutJob(jobRec("j1", "s1", JobStateQueued)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	logPath := filepath.Join(dir, "wal.log")
	whole, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	// Append half of another record's worth of garbage.
	torn := append(append([]byte(nil), whole...), []byte{0, 0, 0, 99, 1, 2, 3, 4, 5}...)
	if err := os.WriteFile(logPath, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	var obs recordingObserver
	s2 := mustOpen(t, dir, Options{Observer: &obs})
	if got := obs.truncated(); got != int64(len(torn)-len(whole)) {
		t.Fatalf("truncated %d bytes, want %d", got, len(torn)-len(whole))
	}
	st := s2.State()
	if len(st.Sessions) != 1 || len(st.Jobs) != 1 {
		t.Fatalf("state after torn tail: %+v %+v", st.Sessions, st.Jobs)
	}
	// The file is back at a frame boundary: a fresh append replays fine.
	if err := s2.PutJob(jobRec("j2", "s1", JobStateQueued)); err != nil {
		t.Fatal(err)
	}
	s2.Close()
	if st := mustOpen(t, dir, Options{}).State(); len(st.Jobs) != 2 {
		t.Fatalf("jobs after torn-tail recovery = %+v", st.Jobs)
	}
}

// TestCompact pins that compaction preserves state, moves it into the
// snapshot, and empties the log.
func TestCompact(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	for _, err := range []error{
		s.PutSession(sessionRec("s1")),
		s.PutJob(jobRec("j1", "s1", JobStateRunning)),
		s.PutCheckpoint(checkpointRec("j1", 1)),
		s.PutCheckpoint(checkpointRec("j1", 2)),
		s.PutCheckpoint(checkpointRec("j1", 3)),
	} {
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("log after compact: %v, size %d", err, fi.Size())
	}
	// Appends after compaction land in the (now empty) log.
	if err := s.PutJob(jobRec("j1", "s1", JobStateDone)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	st := mustOpen(t, dir, Options{}).State()
	if len(st.Sessions) != 1 || len(st.Jobs) != 1 || st.Jobs[0].State != JobStateDone {
		t.Fatalf("state after compact+reopen: %+v %+v", st.Sessions, st.Jobs)
	}
	if len(st.Checkpoints) != 0 {
		t.Fatalf("terminal job kept checkpoint: %+v", st.Checkpoints)
	}
}

// TestCorruptSnapshotRejected pins that a snapshot with trailing garbage
// is an error (snapshots are written atomically; garbage means real
// corruption, not a torn append).
func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{})
	if err := s.PutSession(sessionRec("s1")); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	s.Close()

	snapPath := filepath.Join(dir, "snapshot.log")
	f, err := os.OpenFile(snapPath, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("garbage"))
	f.Close()

	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot must fail open")
	}
}

// TestConcurrentAppends pins that appends are safe under concurrency and
// all land in the log.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	s := mustOpen(t, dir, Options{NoSync: true})
	if err := s.PutSession(sessionRec("s1")); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := string(rune('a' + i))
			for k := 0; k < 25; k++ {
				if err := s.PutCheckpoint(checkpointRec("j"+id, k+1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	s.Close()

	st := mustOpen(t, dir, Options{}).State()
	if len(st.Checkpoints) != 8 {
		t.Fatalf("got %d checkpoints, want 8", len(st.Checkpoints))
	}
	for id, cp := range st.Checkpoints {
		if cp.Checkpoint.Step != 25 {
			t.Fatalf("job %s latest checkpoint step = %d, want 25", id, cp.Checkpoint.Step)
		}
	}
}

type recordingObserver struct {
	mu         sync.Mutex
	appended   int
	syncs      int
	truncBytes int64
}

func (o *recordingObserver) Appended(n int) {
	o.mu.Lock()
	o.appended += n
	o.mu.Unlock()
}
func (o *recordingObserver) Synced(time.Duration) {
	o.mu.Lock()
	o.syncs++
	o.mu.Unlock()
}
func (o *recordingObserver) Truncated(n int64) {
	o.mu.Lock()
	o.truncBytes += n
	o.mu.Unlock()
}
func (o *recordingObserver) truncated() int64 {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.truncBytes
}
