package distance

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/provenance"
	"repro/internal/randx"
	"repro/internal/valuation"
)

// Estimator computes the distance dist^{h,φ}(p0, pc) of Definition 3.2.2:
// the average VAL-FUNC value over the valuation class, either by exact
// enumeration of the class or by Monte-Carlo sampling (Prop. 4.1.2).
//
// For every valuation v, the original expression is evaluated under v,
// the result is aligned into the summary's result space (merged group
// keys are re-aggregated), the summary is evaluated under the extended
// valuation v^{h,φ}, and the VAL-FUNC is applied to the pair.
//
// The estimator caches original-expression evaluations keyed by valuation
// name, because during summarization the same p0 is compared against many
// candidates under the same class.
type Estimator struct {
	Class valuation.Class
	Phi   provenance.Combiner
	VF    ValFunc

	// Samples > 0 switches to Monte-Carlo sampling with that many draws;
	// 0 enumerates the whole class.
	Samples int
	// Rand drives sampling; required when Samples > 0 (Validate reports
	// the misconfiguration as an error).
	Rand *rand.Rand
	// RandSrc, when set, is the serializable source backing Rand; if Rand
	// is nil, Validate creates it from RandSrc. The summarizer's
	// checkpoint layer snapshots and restores RandSrc so sampling-mode
	// runs can be resumed bit-identically (core.Config.CheckpointEvery
	// requires it when Samples > 0).
	RandSrc *randx.Source
	// MaxError, when positive, normalizes distances into [0,1] by
	// dividing by the maximum possible error (Sec. 6.3).
	MaxError float64
	// Parallelism, when > 1, fans DistanceBatch's candidate sweep across
	// that many goroutines. Sampling draws happen up front on the calling
	// goroutine and per-candidate sums accumulate in fixed valuation
	// order, so batched results are bit-identical at any worker count.
	// Distance (single-candidate) is unaffected.
	Parallelism int
	// LegacyEval forces the recursive interface-dispatch evaluator for
	// Distance and DistanceBatch instead of compiling candidates into
	// the flat arena (provenance.CompileArena). Results are
	// bit-identical either way; the flag exists as an A/B switch and for
	// the arena-vs-legacy differential tests. DistanceDelta is
	// unaffected: the plan/probe engine is arena-native.
	LegacyEval bool
	// ScalarEval forces per-valuation scalar arena evaluation instead of
	// the valuation-blocked kernel (provenance.Arena.EvalBlock) in
	// Distance, DistanceBatch and DistanceDelta. Results are
	// bit-identical either way; the flag exists as an A/B switch and for
	// the block-vs-scalar differential tests. Arenas that are not
	// Blockable (negative compiled constants) take the scalar path
	// regardless of the flag.
	ScalarEval bool
	// NoMergePatch disables CommitMerge's in-place plan patching
	// (provenance.Plan.ApplyMerge), so every summarization step
	// recompiles its plan from the committed expression. The flag exists
	// as an A/B switch for the patch-vs-recompile equivalence tests.
	NoMergePatch bool

	origCache map[string]provenance.Result
	cachedFor provenance.Expression

	// truthCols memoizes, per raw annotation, its packed truth column
	// over the enumerated valuation class: word b bit j is the truth
	// under valuation 64*b+j. Valid only in enumeration mode, where the
	// class — like the per-valuation results origCache keys by name — is
	// immutable for the estimator's lifetime. Filled sequentially by
	// deltaBlocked's prewarm, read concurrently by its sweep workers.
	truthCols map[provenance.Annotation][]uint64

	// plan caches the compiled evaluation plan of the current expression
	// for DistanceDelta, keyed by expression identity like origCache.
	plan    *provenance.Plan
	planFor provenance.Expression

	// forkPool recycles the per-worker valuation state of scalar delta
	// sweeps (deltaTruths), and blockStatePool the per-worker state of
	// blocked delta sweeps (word columns, lane vectors, VAL-FUNC caches),
	// so mid-run steps allocate no per-worker slabs in steady state.
	forkPool       sync.Pool
	blockStatePool sync.Pool

	stats estimatorCounters
}

// estimatorCounters are the estimator's live instrumentation. They are
// atomics because enumeration-mode estimators are shared by parallel
// candidate-evaluation workers (core.Config.Parallelism), which hit the
// prewarmed cache concurrently.
type estimatorCounters struct {
	evaluations   atomic.Uint64
	cacheHits     atomic.Uint64
	cacheMisses   atomic.Uint64
	cacheResets   atomic.Uint64
	samples       atomic.Uint64
	distanceCalls atomic.Uint64
	distanceNanos atomic.Int64

	batchCalls      atomic.Uint64
	batchCandidates atomic.Uint64
	batchNanos      atomic.Int64

	deltaCalls        atomic.Uint64
	deltaCandidates   atomic.Uint64
	deltaNanos        atomic.Int64
	deltaSkips        atomic.Uint64
	deltaSubtreeEvals atomic.Uint64
	deltaFullEvals    atomic.Uint64

	mergePatches    atomic.Uint64
	mergeRecompiles atomic.Uint64
}

// Stats is a snapshot of the estimator's instrumentation counters: the
// per-call cost the paper's Sec. 6.9 timing experiment measures offline,
// exposed live (e.g. on the server's /metrics endpoint).
type Stats struct {
	// Evaluations counts VAL-FUNC summands computed (one per valuation
	// per Distance call).
	Evaluations uint64
	// CacheHits and CacheMisses count original-expression evaluation
	// cache lookups; CacheResets counts cache invalidations (a new
	// original expression identity, or an explicit ResetCache).
	CacheHits, CacheMisses, CacheResets uint64
	// Samples counts Monte-Carlo valuation draws (sampling mode only).
	Samples uint64
	// DistanceCalls and DistanceTime accumulate single-candidate Distance
	// invocations and their total wall time.
	DistanceCalls uint64
	DistanceTime  time.Duration
	// BatchCalls counts DistanceBatch invocations, BatchCandidates the
	// candidates they scored, and BatchTime their total wall time (wall,
	// not summed worker time: a parallel sweep's BatchTime shrinks with
	// the speedup).
	BatchCalls, BatchCandidates uint64
	BatchTime                   time.Duration
	// DeltaCalls counts successful DistanceDelta sweeps, DeltaCandidates
	// the candidates they scored, and DeltaTime their total wall time.
	DeltaCalls, DeltaCandidates uint64
	DeltaTime                   time.Duration
	// DeltaSkips counts (candidate, valuation) pairs whose merged truth
	// matched every member's pre-merge truth, so the base evaluation's
	// VAL-FUNC value was reused outright; DeltaFullEvals counts the pairs
	// that did need a candidate evaluation (their VAL-FUNC summands are
	// also in Evaluations); DeltaSubtreeEvals counts the expression nodes
	// those evaluations recomputed — the rest came from the per-valuation
	// node-result memo.
	DeltaSkips, DeltaSubtreeEvals, DeltaFullEvals uint64
	// MergePatches counts committed merges that CommitMerge patched into
	// the cached plan's arena in place (provenance.Plan.ApplyMerge);
	// MergeRecompiles counts commits where the patch was refused and the
	// next step recompiled the plan from scratch.
	MergePatches, MergeRecompiles uint64
}

// Stats returns a snapshot of the estimator's counters. Counters survive
// ResetCache (which is itself counted) and accumulate over the
// estimator's lifetime.
func (e *Estimator) Stats() Stats {
	return Stats{
		Evaluations:     e.stats.evaluations.Load(),
		CacheHits:       e.stats.cacheHits.Load(),
		CacheMisses:     e.stats.cacheMisses.Load(),
		CacheResets:     e.stats.cacheResets.Load(),
		Samples:         e.stats.samples.Load(),
		DistanceCalls:   e.stats.distanceCalls.Load(),
		DistanceTime:    time.Duration(e.stats.distanceNanos.Load()),
		BatchCalls:      e.stats.batchCalls.Load(),
		BatchCandidates: e.stats.batchCandidates.Load(),
		BatchTime:       time.Duration(e.stats.batchNanos.Load()),

		DeltaCalls:        e.stats.deltaCalls.Load(),
		DeltaCandidates:   e.stats.deltaCandidates.Load(),
		DeltaTime:         time.Duration(e.stats.deltaNanos.Load()),
		DeltaSkips:        e.stats.deltaSkips.Load(),
		DeltaSubtreeEvals: e.stats.deltaSubtreeEvals.Load(),
		DeltaFullEvals:    e.stats.deltaFullEvals.Load(),

		MergePatches:    e.stats.mergePatches.Load(),
		MergeRecompiles: e.stats.mergeRecompiles.Load(),
	}
}

// Validate reports configuration errors that would otherwise surface as
// panics deep inside a summarization run — most importantly a sampling
// estimator (Samples > 0) without a random source, which would
// nil-pointer-dereference inside Class.Sample on the first Distance call.
// core.New and the baselines call it up front.
func (e *Estimator) Validate() error {
	if e.Class == nil {
		return errors.New("distance: Estimator.Class is required")
	}
	if e.VF.F == nil {
		return errors.New("distance: Estimator.VF is required")
	}
	if e.Rand == nil && e.RandSrc != nil {
		e.Rand = rand.New(e.RandSrc)
	}
	if e.Samples > 0 && e.Rand == nil {
		return fmt.Errorf("distance: Estimator.Samples = %d requires Estimator.Rand (Monte-Carlo sampling needs a random source)", e.Samples)
	}
	return nil
}

// Distance computes the (possibly normalized) distance between the
// original expression p0 and the candidate summary pc, where cumulative
// is the mapping with h(p0) = pc and groups is its inverse view.
func (e *Estimator) Distance(p0, pc provenance.Expression, cumulative provenance.Mapping, groups provenance.Groups) float64 {
	t0 := time.Now()
	defer func() {
		e.stats.distanceCalls.Add(1)
		e.stats.distanceNanos.Add(int64(time.Since(t0)))
	}()
	ev := e.candEvaluator(pc)
	if ev != nil && !e.ScalarEval && ev.ar.Blockable() {
		return e.distanceBlocked(p0, pc, cumulative, groups, ev.ar)
	}
	var total float64
	var n int
	if e.Samples > 0 {
		if e.Rand == nil {
			panic("distance: Estimator.Samples > 0 requires Estimator.Rand (see Estimator.Validate)")
		}
		for i := 0; i < e.Samples; i++ {
			v := e.Class.Sample(e.Rand)
			e.stats.samples.Add(1)
			total += e.valFuncAt(v, p0, pc, cumulative, groups, ev)
			n++
		}
	} else {
		for _, v := range e.Class.Valuations() {
			total += e.valFuncAt(v, p0, pc, cumulative, groups, ev)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	d := total / float64(n)
	if e.MaxError > 0 {
		d /= e.MaxError
		if d > 1 {
			d = 1
		}
	}
	return d
}

// distanceBlocked is Distance's valuation-blocked path: the class (or
// the drawn sample set) is packed into 64-lane truth blocks and the
// candidate evaluates once per block through Arena.EvalBlock instead of
// once per valuation on the scalar arena. VAL-FUNC summands accumulate
// in valuation order, so the result is bit-identical to the scalar path.
func (e *Estimator) distanceBlocked(p0, pc provenance.Expression, cumulative provenance.Mapping, groups provenance.Groups, ar *provenance.Arena) float64 {
	vals := e.batchValuations()
	if len(vals) == 0 {
		return 0
	}
	tb := provenance.NewTruthBlock()
	bs := ar.GetBlockScratch()
	defer ar.PutBlockScratch(bs)
	anns := ar.Annotations()
	exts := make([]provenance.Valuation, 64)
	summ := make([]provenance.Vector, 64)
	var total float64
	for lo := 0; lo < len(vals); lo += 64 {
		block := vals[lo:min(len(vals), lo+64)]
		for j, v := range block {
			exts[j] = provenance.ExtendValuation(v, groups, e.Phi)
		}
		tb.Reset(len(anns), len(block))
		for id, ann := range anns {
			var w uint64
			for j := range block {
				if exts[j].Truth(ann) {
					w |= 1 << uint(j)
				}
			}
			tb.SetWord(int32(id), w)
		}
		ar.EvalBlock(tb, bs, summ[:len(block)])
		for j, v := range block {
			e.stats.evaluations.Add(1)
			orig := e.evalOriginal(v, p0)
			aligned := pc.AlignResult(orig, cumulative)
			total += e.VF.F(v, aligned, summ[j])
		}
	}
	d := total / float64(len(vals))
	if e.MaxError > 0 {
		d /= e.MaxError
		if d > 1 {
			d = 1
		}
	}
	return d
}

// CommitMerge tells the estimator that the summarizer committed the merge
// of members into newAnn, turning cur into next. When the cached delta
// plan is for cur, the plan is patched in place
// (provenance.Plan.ApplyMerge) and rekeyed to next, so the next step's
// DistanceDelta reuses the compiled arena instead of recompiling the
// whole expression. ApplyMerge self-verifies against next; a refused
// patch (or NoMergePatch) just drops the cached plan and the next step
// recompiles — either way results are unchanged.
func (e *Estimator) CommitMerge(cur, next provenance.Expression, members []provenance.Annotation, newAnn provenance.Annotation) {
	if e.plan == nil || !comparableExpr(cur) || e.planFor != cur {
		return
	}
	ng, ok := next.(*provenance.Agg)
	if !ok || e.NoMergePatch || !comparableExpr(next) {
		e.plan = nil
		e.planFor = nil
		e.stats.mergeRecompiles.Add(1)
		return
	}
	if e.plan.ApplyMerge(ng, members, newAnn) {
		e.planFor = next
		e.stats.mergePatches.Add(1)
	} else {
		e.plan = nil
		e.planFor = nil
		e.stats.mergeRecompiles.Add(1)
	}
}

// valFuncAt evaluates one summand of Definition 3.2.2. When ev is
// non-nil the candidate evaluates on its compiled arena (one bitset
// fill plus an iterative pass over the node arrays) instead of the
// recursive tree walk; the two are bit-identical.
func (e *Estimator) valFuncAt(v provenance.Valuation, p0, pc provenance.Expression, cumulative provenance.Mapping, groups provenance.Groups, ev *arenaEvaluator) float64 {
	e.stats.evaluations.Add(1)
	orig := e.evalOriginal(v, p0)
	aligned := pc.AlignResult(orig, cumulative)
	ext := provenance.ExtendValuation(v, groups, e.Phi)
	var summ provenance.Result
	if ev != nil {
		summ = ev.eval(ext)
	} else {
		summ = pc.Eval(ext)
	}
	return e.VF.F(v, aligned, summ)
}

// arenaEvaluator owns the compiled arena of one candidate expression
// plus the per-evaluator truth bitset and scratch. It amortizes the one
// CompileArena pass over every valuation of a Distance call.
type arenaEvaluator struct {
	ar   *provenance.Arena
	s    *provenance.ArenaScratch
	bits provenance.Bitset
}

// candEvaluator compiles pc for arena evaluation, or returns nil — and
// the caller falls back to interface dispatch — when LegacyEval is set
// or pc is not a compilable aggregated expression.
func (e *Estimator) candEvaluator(pc provenance.Expression) *arenaEvaluator {
	if e.LegacyEval {
		return nil
	}
	g, ok := pc.(*provenance.Agg)
	if !ok {
		return nil
	}
	ar := provenance.CompileArena(g)
	if ar == nil {
		return nil
	}
	return &arenaEvaluator{ar: ar, s: ar.NewScratch(), bits: ar.NewTruths()}
}

// eval evaluates the compiled candidate under the extended valuation:
// truths are pulled once per interned annotation (instead of once per
// occurrence) and the node pass is iterative.
func (ae *arenaEvaluator) eval(ext provenance.Valuation) provenance.Result {
	ae.ar.FillTruths(ae.bits, ext.Truth)
	return ae.ar.Eval(ae.bits, ae.s)
}

// comparableExpr reports whether an Expression's dynamic type supports
// interface comparison. Comparing interfaces whose dynamic type is a
// non-comparable struct (one with slice or map fields, say) panics at
// runtime, so identity-keyed caches must check this before using an
// expression as a cache key.
func comparableExpr(e provenance.Expression) bool {
	if e == nil {
		return false
	}
	return reflect.TypeOf(e).Comparable()
}

// evalOriginal evaluates p0 under v with memoization. Expressions of
// non-comparable dynamic types cannot be identity-checked against the
// cache key, so they are evaluated uncached instead of panicking on the
// interface comparison.
func (e *Estimator) evalOriginal(v provenance.Valuation, p0 provenance.Expression) provenance.Result {
	if !comparableExpr(p0) {
		e.stats.cacheMisses.Add(1)
		return p0.Eval(v)
	}
	// Safe even while cachedFor holds a value: only comparable types are
	// ever stored, and comparing across distinct dynamic types is false
	// without panicking.
	if e.cachedFor != p0 {
		if e.cachedFor != nil {
			e.stats.cacheResets.Add(1)
		}
		e.origCache = make(map[string]provenance.Result)
		e.cachedFor = p0
	}
	key := v.Name()
	if r, ok := e.origCache[key]; ok {
		e.stats.cacheHits.Add(1)
		return r
	}
	e.stats.cacheMisses.Add(1)
	r := p0.Eval(v)
	e.origCache[key] = r
	return r
}

// ResetCache drops the original-expression evaluation cache. Call it when
// the estimator is reused with a different original expression identity
// that may collide on valuation names.
func (e *Estimator) ResetCache() {
	if e.cachedFor != nil {
		e.stats.cacheResets.Add(1)
	}
	e.origCache = nil
	e.cachedFor = nil
	e.truthCols = nil
	e.plan = nil
	e.planFor = nil
}

// truthColumn returns annotation a's packed truth column over vals
// (word j>>6, bit j&63 = vals[j].Truth(a)), memoized across calls in
// enumeration mode. Sampling mode redraws valuations per sweep, so its
// columns are computed fresh and never cached.
func (e *Estimator) truthColumn(a provenance.Annotation, vals []provenance.Valuation) []uint64 {
	words := (len(vals) + 63) / 64
	if e.Samples <= 0 {
		if col, ok := e.truthCols[a]; ok && len(col) == words {
			return col
		}
	}
	col := make([]uint64, words)
	for j, v := range vals {
		if v.Truth(a) {
			col[j>>6] |= 1 << uint(j&63)
		}
	}
	if e.Samples <= 0 {
		if e.truthCols == nil {
			e.truthCols = make(map[provenance.Annotation][]uint64)
		}
		e.truthCols[a] = col
	}
	return col
}

// planOf returns the compiled evaluation plan for cur, cached by
// expression identity across the calls of one summarization step (a step
// scores its pair cohort and any k-ary growth rounds against the same
// cur). Returns nil when cur cannot be planned.
func (e *Estimator) planOf(cur provenance.Expression) *provenance.Plan {
	if !comparableExpr(cur) {
		return provenance.NewPlan(cur)
	}
	if e.planFor != cur {
		e.plan = provenance.NewPlan(cur)
		e.planFor = cur
	}
	return e.plan
}

// Prewarm fills the original-expression cache with the evaluation of p0
// under every valuation of the class. After a prewarm, enumeration-mode
// Distance calls only read the cache, which makes the estimator safe for
// concurrent use by parallel candidate evaluation (sampling mode draws
// fresh valuations and must not be shared across goroutines).
func (e *Estimator) Prewarm(p0 provenance.Expression) {
	for _, v := range e.Class.Valuations() {
		e.evalOriginal(v, p0)
	}
}

// SampleSize returns a number of Monte-Carlo samples sufficient for
// Prob(|d' − dist| > eps) < 1 − delta via Chebyshev's inequality, given
// an upper bound on the per-sample variance (for a VAL-FUNC bounded in
// [0,B], varBound = B²/4 always suffices). This makes the polynomial
// convergence guarantee of Prop. 4.1.2 concrete.
func SampleSize(eps, delta, varBound float64) int {
	if eps <= 0 || delta <= 0 || delta >= 1 {
		return 1
	}
	n := varBound / (eps * eps * (1 - delta))
	if n < 1 {
		return 1
	}
	return int(math.Ceil(n))
}
