package provenance

import (
	"fmt"
	"sort"
	"strings"
)

// Expr is a node of a provenance polynomial in N[Ann]: a polynomial with
// natural coefficients whose indeterminates are annotations, extended
// with comparison guards ("equation elements") of the form
// [poly ⊗ m OP c]. Expressions are immutable; every transformation
// returns a new expression.
type Expr interface {
	// EvalNat evaluates the polynomial in the naturals under the given
	// assignment of naturals to annotations. Truth valuations assign 1 to
	// true annotations and 0 to false ones; the semiring axioms then
	// collapse the polynomial to a natural number.
	EvalNat(assign func(Annotation) int) int

	// MapAnn applies an annotation renaming and returns the rewritten
	// (unsimplified) expression. The renaming may return the reserved
	// Zero/One annotations to substitute semiring constants.
	MapAnn(rename func(Annotation) Annotation) Expr

	// CollectAnns adds every annotation occurring in the expression to set.
	CollectAnns(set map[Annotation]struct{})

	// Size is the number of annotation occurrences (with repetitions),
	// the paper's provenance size measure restricted to this node.
	Size() int

	// Key is a canonical string: two expressions are semiring-syntactically
	// equal (up to commutativity) iff their keys are equal. Simplify before
	// comparing keys for meaningful results.
	Key() string

	// String renders the expression in the paper's notation.
	String() string
}

// CmpOp is a comparison operator inside a guard element.
type CmpOp int

// Comparison operators.
const (
	OpGT CmpOp = iota // >
	OpGE              // >=
	OpLT              // <
	OpLE              // <=
	OpEQ              // =
	OpNE              // ≠
)

func (o CmpOp) String() string {
	switch o {
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpEQ:
		return "="
	case OpNE:
		return "≠"
	}
	return "?"
}

// holds reports whether "lhs o rhs" is true.
func (o CmpOp) holds(lhs, rhs float64) bool {
	switch o {
	case OpGT:
		return lhs > rhs
	case OpGE:
		return lhs >= rhs
	case OpLT:
		return lhs < rhs
	case OpLE:
		return lhs <= rhs
	case OpEQ:
		return lhs == rhs
	case OpNE:
		return lhs != rhs
	}
	return false
}

// Var is a single annotation used as a polynomial indeterminate.
type Var struct{ Ann Annotation }

// Const is a natural-number constant; Const{0} and Const{1} are the
// semiring's neutral elements.
type Const struct{ N int }

// Sum is an n-ary semiring addition (alternative use of data).
type Sum struct{ Terms []Expr }

// Prod is an n-ary semiring multiplication (joint use of data).
type Prod struct{ Factors []Expr }

// Cmp is a comparison guard [Inner ⊗ Value Op Bound]: an abstract
// equation element kept as a token inside the polynomial. Under a
// valuation it is interpreted as 1 when the comparison holds and 0
// otherwise, where the left-hand side is Value if Inner evaluates to a
// nonzero natural and 0 otherwise (the congruences 0⊗m ≡ 0, 1⊗m ≡ m).
type Cmp struct {
	Inner Expr    // provenance polynomial guarding the value
	Value float64 // the tensor value paired with Inner
	Op    CmpOp
	Bound float64
}

// V is shorthand for Var{a}.
func V(a Annotation) Expr { return Var{Ann: a} }

// P is shorthand for the product of the given annotations.
func P(anns ...Annotation) Expr {
	fs := make([]Expr, len(anns))
	for i, a := range anns {
		fs[i] = Var{Ann: a}
	}
	return Prod{Factors: fs}
}

// --- Var ---

func (v Var) EvalNat(assign func(Annotation) int) int { return assign(v.Ann) }

func (v Var) MapAnn(rename func(Annotation) Annotation) Expr {
	switch r := rename(v.Ann); r {
	case Zero:
		return Const{0}
	case One:
		return Const{1}
	default:
		return Var{Ann: r}
	}
}

func (v Var) CollectAnns(set map[Annotation]struct{}) { set[v.Ann] = struct{}{} }
func (v Var) Size() int                               { return 1 }
func (v Var) Key() string                             { return "v:" + string(v.Ann) }
func (v Var) String() string                          { return string(v.Ann) }

// --- Const ---

func (c Const) EvalNat(func(Annotation) int) int        { return c.N }
func (c Const) MapAnn(func(Annotation) Annotation) Expr { return c }
func (c Const) CollectAnns(map[Annotation]struct{})     {}
func (c Const) Size() int                               { return 0 }
func (c Const) Key() string                             { return fmt.Sprintf("c:%d", c.N) }
func (c Const) String() string                          { return fmt.Sprintf("%d", c.N) }

// --- Sum ---

func (s Sum) EvalNat(assign func(Annotation) int) int {
	total := 0
	for _, t := range s.Terms {
		total += t.EvalNat(assign)
	}
	return total
}

func (s Sum) MapAnn(rename func(Annotation) Annotation) Expr {
	ts := make([]Expr, len(s.Terms))
	for i, t := range s.Terms {
		ts[i] = t.MapAnn(rename)
	}
	return Sum{Terms: ts}
}

func (s Sum) CollectAnns(set map[Annotation]struct{}) {
	for _, t := range s.Terms {
		t.CollectAnns(set)
	}
}

func (s Sum) Size() int {
	n := 0
	for _, t := range s.Terms {
		n += t.Size()
	}
	return n
}

func (s Sum) Key() string {
	keys := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		keys[i] = t.Key()
	}
	sort.Strings(keys)
	return "s(" + strings.Join(keys, "+") + ")"
}

func (s Sum) String() string {
	parts := make([]string, len(s.Terms))
	for i, t := range s.Terms {
		parts[i] = t.String()
	}
	return "(" + strings.Join(parts, " + ") + ")"
}

// --- Prod ---

func (p Prod) EvalNat(assign func(Annotation) int) int {
	total := 1
	for _, f := range p.Factors {
		total *= f.EvalNat(assign)
		if total == 0 {
			return 0
		}
	}
	return total
}

func (p Prod) MapAnn(rename func(Annotation) Annotation) Expr {
	fs := make([]Expr, len(p.Factors))
	for i, f := range p.Factors {
		fs[i] = f.MapAnn(rename)
	}
	return Prod{Factors: fs}
}

func (p Prod) CollectAnns(set map[Annotation]struct{}) {
	for _, f := range p.Factors {
		f.CollectAnns(set)
	}
}

func (p Prod) Size() int {
	n := 0
	for _, f := range p.Factors {
		n += f.Size()
	}
	return n
}

func (p Prod) Key() string {
	keys := make([]string, len(p.Factors))
	for i, f := range p.Factors {
		keys[i] = f.Key()
	}
	sort.Strings(keys)
	return "p(" + strings.Join(keys, "*") + ")"
}

func (p Prod) String() string {
	parts := make([]string, len(p.Factors))
	for i, f := range p.Factors {
		parts[i] = f.String()
	}
	return strings.Join(parts, "·")
}

// --- Cmp ---

func (c Cmp) EvalNat(assign func(Annotation) int) int {
	lhs := 0.0
	if c.Inner.EvalNat(assign) != 0 {
		lhs = c.Value
	}
	if c.Op.holds(lhs, c.Bound) {
		return 1
	}
	return 0
}

func (c Cmp) MapAnn(rename func(Annotation) Annotation) Expr {
	return Cmp{Inner: c.Inner.MapAnn(rename), Value: c.Value, Op: c.Op, Bound: c.Bound}
}

func (c Cmp) CollectAnns(set map[Annotation]struct{}) { c.Inner.CollectAnns(set) }
func (c Cmp) Size() int                               { return c.Inner.Size() }

func (c Cmp) Key() string {
	return fmt.Sprintf("q(%s⊗%g%s%g)", c.Inner.Key(), c.Value, c.Op, c.Bound)
}

func (c Cmp) String() string {
	return fmt.Sprintf("[%s ⊗ %g %s %g]", c.Inner, c.Value, c.Op, c.Bound)
}

// Anns returns the sorted set of annotations occurring in e.
func Anns(e Expr) []Annotation {
	set := make(map[Annotation]struct{})
	e.CollectAnns(set)
	out := make([]Annotation, 0, len(set))
	for a := range set {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
