package provenance

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMappingRenameIdentity(t *testing.T) {
	m := NewMapping()
	if m.Rename("x") != "x" {
		t.Fatal("empty mapping must be identity")
	}
	var zero Mapping // zero value must also behave as identity
	if zero.Rename("x") != "x" {
		t.Fatal("zero-value mapping must be identity")
	}
}

func TestMappingSetAndPairs(t *testing.T) {
	m := NewMapping().Set("a", "G").Set("b", "G")
	if m.Rename("a") != "G" || m.Rename("b") != "G" || m.Rename("c") != "c" {
		t.Fatalf("rename wrong: %v", m.Pairs())
	}
	pairs := m.Pairs()
	want := [][2]Annotation{{"a", "G"}, {"b", "G"}}
	if !reflect.DeepEqual(pairs, want) {
		t.Fatalf("Pairs = %v, want %v", pairs, want)
	}
	if m.Len() != 2 {
		t.Fatalf("Len = %d, want 2", m.Len())
	}
}

func TestMappingSetDoesNotMutate(t *testing.T) {
	m1 := NewMapping().Set("a", "G")
	m2 := m1.Set("b", "H")
	if m1.Rename("b") != "b" {
		t.Fatal("Set mutated the receiver")
	}
	if m2.Rename("a") != "G" || m2.Rename("b") != "H" {
		t.Fatal("Set lost entries")
	}
}

func TestMappingCompose(t *testing.T) {
	// first: a,b -> G ; then: G,c -> H. Composition: a,b,c -> H, G -> H.
	first := MergeMapping("G", "a", "b")
	second := MergeMapping("H", "G", "c")
	comp := first.Compose(second)
	for _, a := range []Annotation{"a", "b", "c", "G"} {
		if comp.Rename(a) != "H" {
			t.Fatalf("compose(%s) = %s, want H", a, comp.Rename(a))
		}
	}
	if comp.Rename("z") != "z" {
		t.Fatal("compose must be identity elsewhere")
	}
}

// Property: Compose agrees with sequential renaming on arbitrary chains.
func TestComposeLaw(t *testing.T) {
	anns := []Annotation{"a", "b", "c", "d", "e", "F", "G", "H"}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		randMapping := func() Mapping {
			m := NewMapping()
			for _, a := range anns[:5] {
				if r.Intn(2) == 0 {
					m = m.Set(a, anns[5+r.Intn(3)])
				}
			}
			return m
		}
		m1, m2 := randMapping(), randMapping()
		comp := m1.Compose(m2)
		for _, a := range anns {
			if comp.Rename(a) != m2.Rename(m1.Rename(a)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupsOf(t *testing.T) {
	original := []Annotation{"a", "b", "c", "d"}
	cum := MergeMapping("G", "a", "b")
	g := GroupsOf(original, cum)
	if !reflect.DeepEqual(g["G"], []Annotation{"a", "b"}) {
		t.Fatalf("group G = %v", g["G"])
	}
	if !reflect.DeepEqual(g.Members("c"), []Annotation{"c"}) {
		t.Fatalf("singleton = %v", g.Members("c"))
	}
	if !reflect.DeepEqual(g.Members("missing"), []Annotation{"missing"}) {
		t.Fatalf("missing = %v", g.Members("missing"))
	}
}

func TestUniverseBasics(t *testing.T) {
	u := NewUniverse()
	u.Add("U1", "users", Attrs{"gender": "F", "age": "25-34"})
	u.Add("U2", "users", Attrs{"gender": "F", "age": "35-44"})
	u.Add("M1", "movies", Attrs{"year": "1995"})

	if u.Table("U1") != "users" || u.Table("M1") != "movies" {
		t.Fatal("table lookup broken")
	}
	if u.Attr("U1", "gender") != "F" {
		t.Fatal("attr lookup broken")
	}
	if !u.Known("U1") || u.Known("nope") {
		t.Fatal("Known broken")
	}
	if got := u.InTable("users"); len(got) != 2 {
		t.Fatalf("InTable(users) = %v", got)
	}
	if got := u.Annotations(); len(got) != 3 {
		t.Fatalf("Annotations = %v", got)
	}
}

func TestUniverseMergeNaming(t *testing.T) {
	u := NewUniverse()
	u.Add("U1", "users", Attrs{"gender": "F", "age": "25-34"})
	u.Add("U2", "users", Attrs{"gender": "F", "age": "35-44"})
	name := u.Merge([]Annotation{"U1", "U2"}, FreshName([]Annotation{"U1", "U2"}))
	if name != "gender:F" {
		t.Fatalf("merge name = %s, want gender:F", name)
	}
	if u.Attr(name, "gender") != "F" {
		t.Fatal("merged annotation must carry shared attrs")
	}
	if u.Attr(name, "age") != "" {
		t.Fatal("non-shared attrs must be dropped")
	}
	if u.Table(name) != "users" {
		t.Fatal("merged annotation must keep table")
	}
}

func TestUniverseMergeNameCollision(t *testing.T) {
	u := NewUniverse()
	u.Add("U1", "users", Attrs{"gender": "F"})
	u.Add("U2", "users", Attrs{"gender": "F"})
	u.Add("U3", "users", Attrs{"gender": "F"})
	u.Add("U4", "users", Attrs{"gender": "F"})
	n1 := u.Merge([]Annotation{"U1", "U2"}, "fb1")
	n2 := u.Merge([]Annotation{"U3", "U4"}, "fb2")
	if n1 == n2 {
		t.Fatalf("colliding merge names not disambiguated: %s", n1)
	}
	// Growing an existing group keeps its name.
	n3 := u.Merge([]Annotation{n1, "U3"}, "fb3")
	if n3 == n2 {
		t.Fatalf("grown group stole another group's name")
	}
}

func TestUniverseMergeNoSharedAttrs(t *testing.T) {
	u := NewUniverse()
	u.Add("U1", "users", Attrs{"gender": "F"})
	u.Add("U2", "users", Attrs{"gender": "M"})
	fb := FreshName([]Annotation{"U2", "U1"})
	name := u.Merge([]Annotation{"U1", "U2"}, fb)
	if name != fb {
		t.Fatalf("merge without shared attrs = %s, want fallback %s", name, fb)
	}
	if fb != "{U1+U2}" {
		t.Fatalf("FreshName = %s", fb)
	}
}

func TestShared(t *testing.T) {
	got := Shared([]Attrs{
		{"a": "1", "b": "2"},
		{"a": "1", "b": "3"},
		{"a": "1"},
	})
	if len(got) != 1 || got["a"] != "1" {
		t.Fatalf("Shared = %v", got)
	}
	if len(Shared(nil)) != 0 {
		t.Fatal("Shared(nil) must be empty")
	}
}

func TestValuationNames(t *testing.T) {
	v := CancelAnnotation("U7")
	if v.Name() != "cancel U7" {
		t.Fatalf("Name = %q", v.Name())
	}
	if v.Truth("U7") || !v.Truth("U8") {
		t.Fatal("CancelAnnotation truth table wrong")
	}
	s := CancelSet("cancel gender=M", "U1", "U2")
	if s.Truth("U1") || s.Truth("U2") || !s.Truth("U3") {
		t.Fatal("CancelSet truth table wrong")
	}
	unnamed := MapValuation{Assign: map[Annotation]bool{"b": false, "a": false}, Default: true}
	if unnamed.Name() != "flip{a,b}" {
		t.Fatalf("derived name = %q", unnamed.Name())
	}
}

func TestCombiners(t *testing.T) {
	if !CombineOr.Combine([]bool{false, true}) {
		t.Fatal("OR")
	}
	if CombineOr.Combine([]bool{false, false}) {
		t.Fatal("OR all false")
	}
	if CombineAnd.Combine([]bool{true, false}) {
		t.Fatal("AND")
	}
	if !CombineAnd.Combine([]bool{true, true}) {
		t.Fatal("AND all true")
	}
	if CombineOr.Name() != "OR" || CombineAnd.Name() != "AND" {
		t.Fatal("combiner names")
	}
}

func TestResultStrings(t *testing.T) {
	if Scalar(2.5).ResultString() != "2.5" {
		t.Fatalf("Scalar string = %q", Scalar(2.5).ResultString())
	}
	v := Vector{"b": 1, "a": 2}
	if v.ResultString() != "(a:2, b:1)" {
		t.Fatalf("Vector string = %q", v.ResultString())
	}
}
