package provenance

import (
	"fmt"
	"testing"
)

// blockValuations enumerates `lanes` valuations over planAnns: lane j is
// planValuation(j % 32).
func blockValuations(lanes int) []Valuation {
	vals := make([]Valuation, lanes)
	for j := range vals {
		vals[j] = planValuation(j % (1 << len(planAnns)))
	}
	return vals
}

// fillBlock packs the truths of vals into tb over ar's interned
// annotations.
func fillBlock(ar *Arena, tb *TruthBlock, vals []Valuation) {
	tb.Reset(ar.NumAnns(), len(vals))
	for id, ann := range ar.Annotations() {
		var w uint64
		for j, v := range vals {
			if v.Truth(ann) {
				w |= 1 << uint(j)
			}
		}
		tb.SetWord(int32(id), w)
	}
}

// TestEvalBlockMatchesEval pins the tentpole bit-identity contract: one
// blocked sweep over V lanes produces, lane for lane, the same vector as
// V scalar Arena.Eval passes — for every monoid and for partial blocks
// (V not a multiple of 64).
func TestEvalBlockMatchesEval(t *testing.T) {
	for _, kind := range []AggKind{AggSum, AggMax, AggMin, AggCount} {
		for _, lanes := range []int{1, 5, 37, 64} {
			g := planFixture(kind)
			ar := CompileArena(g)
			if !ar.Blockable() {
				t.Fatalf("%v: fixture arena unexpectedly non-blockable", kind)
			}
			vals := blockValuations(lanes)
			tb := NewTruthBlock()
			fillBlock(ar, tb, vals)
			out := make([]Vector, lanes)
			ar.EvalBlock(tb, NewBlockScratch(), out)

			s := ar.NewScratch()
			bits := ar.NewTruths()
			for j, v := range vals {
				ar.FillTruths(bits, v.Truth)
				want := ar.Eval(bits, s)
				if !vecEqual(out[j], want) {
					t.Fatalf("%v lanes=%d lane=%d: EvalBlock %v != Eval %v",
						kind, lanes, j, out[j], want)
				}
			}
		}
	}
}

// TestEvalBlockReusesOutVectors checks that non-nil out entries are
// cleared and refilled in place rather than reallocated.
func TestEvalBlockReusesOutVectors(t *testing.T) {
	g := planFixture(AggSum)
	ar := CompileArena(g)
	vals := blockValuations(8)
	tb := NewTruthBlock()
	fillBlock(ar, tb, vals)
	s := NewBlockScratch()
	out := make([]Vector, 8)
	ar.EvalBlock(tb, s, out)
	first := make([]Vector, 8)
	for j := range out {
		first[j] = out[j]
		out[j]["stale-coordinate"] = 99 // must be cleared by the refill
	}
	ar.EvalBlock(tb, s, out)
	for j := range out {
		if fmt.Sprintf("%p", out[j]) != fmt.Sprintf("%p", first[j]) {
			t.Fatalf("lane %d: out vector reallocated on reuse", j)
		}
		if _, ok := out[j]["stale-coordinate"]; ok {
			t.Fatalf("lane %d: stale coordinate survived the refill", j)
		}
	}
}

// TestCandEvalBlockMatchesCandEval pins the blocked probe path against
// the scalar CandEval on every lane of a block, for every cohort merge,
// both combiners, and every monoid — and checks that lanes outside the
// evaluated set stay untouched.
func TestCandEvalBlockMatchesCandEval(t *testing.T) {
	cohort := [][]Annotation{
		{"u1", "u2"},
		{"u1", "u3"},
		{"m1", "m2"},
		{"u2", "m1"},
		{"u1", "u2", "u3"},
	}
	const lanes = 32
	for _, kind := range []AggKind{AggSum, AggMax, AggMin, AggCount} {
		plan := NewPlan(planFixture(kind))
		ar := plan.Arena()
		vals := blockValuations(lanes)
		tb := NewTruthBlock()
		fillBlock(ar, tb, vals)
		bs := NewBlockScratch()
		base := make([]Vector, lanes)
		ar.EvalBlock(tb, bs, base)
		s := plan.NewScratch()
		for _, phi := range []Combiner{CombineOr, CombineAnd} {
			for _, ms := range cohort {
				pr := plan.Probe(ms, "Z")
				if pr == nil {
					t.Fatalf("%v probe %v: unexpected nil", kind, ms)
				}
				// Merged φ-truth word over the member columns.
				words := make([]uint64, len(ms))
				for i, m := range ms {
					id, _ := ar.AnnID(m)
					words[i] = tb.Word(id)
				}
				mergedW := phi.(WordCombiner).CombineWords(words, tb.Mask())
				// Evaluate even lanes only; odd lanes must stay nil.
				evalLanes := uint64(0x5555_5555_5555_5555) & tb.Mask()
				out := make([]Vector, lanes)
				pr.CandEvalBlock(mergedW, evalLanes, base, bs, out)
				for j, v := range vals {
					if evalLanes&(1<<uint(j)) == 0 {
						if out[j] != nil {
							t.Fatalf("%v probe %v lane %d: unevaluated lane was written", kind, ms, j)
						}
						continue
					}
					truths := make([]bool, len(ms))
					for i, m := range ms {
						truths[i] = v.Truth(m)
					}
					mergedN := 0
					if phi.Combine(truths) {
						mergedN = 1
					}
					// Scalar reference: BaseEval fills s.vals for this lane.
					baseVec := plan.BaseEval(planTruths(plan, v), s)
					if !vecEqual(baseVec, base[j]) {
						t.Fatalf("%v lane %d: block base %v != scalar base %v", kind, j, base[j], baseVec)
					}
					want := pr.CandEval(mergedN, baseVec, s)
					if !vecEqual(out[j], want) {
						t.Fatalf("%v φ=%s probe %v lane %d:\n CandEvalBlock %v\n CandEval      %v",
							kind, phi.Name(), ms, j, out[j], want)
					}
				}
			}
		}
	}
}

// TestEvalBlockRejectsNegativeConst checks the Blockable gate: an arena
// with a negative constant must refuse the word-level kernel (its
// sum-of-naturals nonzero propagation would be unsound).
func TestEvalBlockRejectsNegativeConst(t *testing.T) {
	g := NewAgg(AggSum,
		Tensor{Prov: Sum{Terms: []Expr{V("a"), Const{N: -1}}}, Value: 2, Count: 1, Group: "g"},
	)
	ar := CompileArena(g)
	if ar == nil {
		t.Fatal("CompileArena rejected a negative constant entirely")
	}
	if ar.Blockable() {
		t.Fatal("arena with a negative constant reported Blockable")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EvalBlock on a non-blockable arena did not panic")
		}
	}()
	tb := NewTruthBlock()
	tb.Reset(ar.NumAnns(), 1)
	ar.EvalBlock(tb, NewBlockScratch(), make([]Vector, 1))
}

func TestTruthBlockLaneBounds(t *testing.T) {
	for _, lanes := range []int{0, 65, -3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Reset(%d lanes) did not panic", lanes)
				}
			}()
			NewTruthBlock().Reset(4, lanes)
		}()
	}
}

func TestBitsetFillWords(t *testing.T) {
	vals := make([]int8, 130)
	for _, i := range []int{0, 63, 64, 101, 129} {
		vals[i] = 1
	}
	want := NewBitset(130)
	got := NewBitset(130)
	for i := range got {
		got[i] = ^uint64(0) // FillWords must clear trailing garbage
	}
	for i, v := range vals {
		if v != 0 {
			want.Set(int32(i))
		}
	}
	got.FillWords(vals)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d: FillWords %064b != Set loop %064b", i, got[i], want[i])
		}
	}
}

func TestScratchPoolsReuse(t *testing.T) {
	ar := CompileArena(planFixture(AggSum))
	s := ar.GetScratch()
	s.SubtreeEvals = 42
	ar.PutScratch(s)
	if s2 := ar.GetScratch(); s2.SubtreeEvals != 0 {
		t.Fatal("pooled ArenaScratch kept its SubtreeEvals counter")
	}
	bs := ar.GetBlockScratch()
	bs.SubtreeEvals = 42
	ar.PutBlockScratch(bs)
	if bs2 := ar.GetBlockScratch(); bs2.SubtreeEvals != 0 {
		t.Fatal("pooled BlockScratch kept its SubtreeEvals counter")
	}
}

// applyMergeStep commits one merge on both a patched plan and a freshly
// recompiled one, returning the next expression. It fails the test when
// the patch is refused (callers that expect refusal pass wantPatch ==
// false).
func applyMergeStep(t *testing.T, plan *Plan, cur *Agg, ms []Annotation, newAnn Annotation, wantPatch bool) *Agg {
	t.Helper()
	next := cur.Apply(MergeMapping(newAnn, ms...)).(*Agg)
	if got := plan.ApplyMerge(next, ms, newAnn); got != wantPatch {
		t.Fatalf("ApplyMerge(%v→%s) = %v, want %v", ms, newAnn, got, wantPatch)
	}
	return next
}

// TestApplyMergeMatchesRecompile is the arena-vs-recompile equivalence
// test at the provenance layer: after each committed merge the patched
// plan must be observationally identical to NewPlan(next) — BaseEval on
// every valuation, Probe sizes and CandEval on a follow-up candidate,
// and the plan's own size accounting. The end-to-end (full MovieLens
// run) variant lives in internal/core.
func TestApplyMergeMatchesRecompile(t *testing.T) {
	for _, kind := range []AggKind{AggSum, AggMax, AggMin, AggCount} {
		cur := planFixture(kind)
		plan := NewPlan(cur)
		steps := []struct {
			ms     []Annotation
			newAnn Annotation
		}{
			{[]Annotation{"u1", "u2"}, "S1"},
			{[]Annotation{"m1", "m2"}, "S2"}, // group rename
		}
		for si, st := range steps {
			cur = applyMergeStep(t, plan, cur, st.ms, st.newAnn, true)
			fresh := NewPlan(cur)
			if plan.Expr() != cur {
				t.Fatalf("%v step %d: patched plan does not hold the committed expression", kind, si)
			}
			ps := plan.NewScratch()
			fs := fresh.NewScratch()
			for mask := 0; mask < 1<<len(planAnns); mask++ {
				// Valuations over the *summary* annotations: extend the base
				// valuation so S1/S2 get φ-truths like a real run.
				v := ExtendValuation(planValuation(mask),
					Groups{"S1": {"u1", "u2"}, "S2": {"m1", "m2"}}, CombineOr)
				pb := plan.NewTruths()
				plan.FillTruths(pb, v.Truth)
				fb := fresh.NewTruths()
				fresh.FillTruths(fb, v.Truth)
				got := plan.BaseEval(pb, ps)
				want := fresh.BaseEval(fb, fs)
				if !vecEqual(got, want) {
					t.Fatalf("%v step %d mask %d: patched BaseEval %v != recompiled %v",
						kind, si, mask, got, want)
				}
				pp := plan.Probe([]Annotation{"S1", "u3"}, "Z")
				fp := fresh.Probe([]Annotation{"S1", "u3"}, "Z")
				if (pp == nil) != (fp == nil) {
					t.Fatalf("%v step %d: probe nil-ness diverged", kind, si)
				}
				if pp != nil {
					if pp.Size != fp.Size {
						t.Fatalf("%v step %d: probe size %d != recompiled %d", kind, si, pp.Size, fp.Size)
					}
					for _, mergedN := range []int{0, 1} {
						got := pp.CandEval(mergedN, plan.BaseEval(pb, ps), ps)
						want := fp.CandEval(mergedN, fresh.BaseEval(fb, fs), fs)
						if !vecEqual(got, want) {
							t.Fatalf("%v step %d mask %d mergedN=%d: patched CandEval %v != recompiled %v",
								kind, si, mask, mergedN, got, want)
						}
					}
				}
			}
		}
	}
}

// TestApplyMergeBlockedEvalAfterPatch checks that the blocked kernel
// stays bit-identical to the scalar path on a patched arena (garbage
// spans present, cone recomputed, annotation count grown).
func TestApplyMergeBlockedEvalAfterPatch(t *testing.T) {
	cur := planFixture(AggSum)
	plan := NewPlan(cur)
	applyMergeStep(t, plan, cur, []Annotation{"u1", "u2"}, "S1", true)
	ar := plan.Arena()
	if ar.DeadNodes() == 0 {
		t.Fatal("merge of u1/u2 left no garbage: fixture no longer exercises dead spans")
	}
	const lanes = 32
	vals := make([]Valuation, lanes)
	for j := range vals {
		vals[j] = ExtendValuation(planValuation(j), Groups{"S1": {"u1", "u2"}}, CombineOr)
	}
	tb := NewTruthBlock()
	fillBlock(ar, tb, vals)
	out := make([]Vector, lanes)
	ar.EvalBlock(tb, ar.GetBlockScratch(), out)
	s := ar.NewScratch()
	bits := ar.NewTruths()
	for j, v := range vals {
		ar.FillTruths(bits, v.Truth)
		want := ar.Eval(bits, s)
		if !vecEqual(out[j], want) {
			t.Fatalf("lane %d: blocked eval on patched arena %v != scalar %v", j, out[j], want)
		}
	}
}

// TestApplyMergeRefusals pins the guard conditions under which the patch
// must refuse and leave the plan untouched.
func TestApplyMergeRefusals(t *testing.T) {
	cur := planFixture(AggSum)
	plan := NewPlan(cur)
	next := cur.Apply(MergeMapping("S1", "u1", "u2")).(*Agg)
	if plan.ApplyMerge(nil, []Annotation{"u1", "u2"}, "S1") {
		t.Fatal("ApplyMerge accepted a nil next expression")
	}
	if plan.ApplyMerge(next, []Annotation{"u1", "u2"}, "m1") {
		t.Fatal("ApplyMerge accepted an already-interned summary annotation")
	}
	if plan.ApplyMerge(next, []Annotation{"u1", One}, "S1") {
		t.Fatal("ApplyMerge accepted a reserved member annotation")
	}
	if plan.ApplyMerge(planFixture(AggMax), []Annotation{"u1", "u2"}, "S1") {
		t.Fatal("ApplyMerge accepted a next expression that does not match the step")
	}
	// The refusals above must not have mutated the plan.
	s := plan.NewScratch()
	v := planValuation(13)
	if got, want := plan.BaseEval(planTruths(plan, v), s), cur.Eval(v).(Vector); !vecEqual(got, want) {
		t.Fatalf("refused ApplyMerge mutated the plan: %v != %v", got, want)
	}
	if plan.ApplyMerge(next, []Annotation{"u1", "u2"}, "S1") != true {
		t.Fatal("valid ApplyMerge refused after prior refusals")
	}
}

// BenchmarkEvalBlock / BenchmarkEvalBlockPerValuation are the micro pair
// of the blocked kernel: one 64-lane blocked sweep versus 64 scalar
// arena evaluations of the same valuations. Per-valuation cost is the
// block number divided by 64.
func BenchmarkEvalBlock(b *testing.B) {
	g := planFixture(AggSum)
	ar := CompileArena(g)
	vals := blockValuations(64)
	tb := NewTruthBlock()
	fillBlock(ar, tb, vals)
	s := NewBlockScratch()
	out := make([]Vector, 64)
	ar.EvalBlock(tb, s, out) // warm the out vectors
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ar.EvalBlock(tb, s, out)
	}
}

func BenchmarkEvalBlockPerValuation(b *testing.B) {
	g := planFixture(AggSum)
	ar := CompileArena(g)
	vals := blockValuations(64)
	bits := make([]Bitset, 64)
	for j, v := range vals {
		bits[j] = ar.NewTruths()
		ar.FillTruths(bits[j], v.Truth)
	}
	s := ar.NewScratch()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range bits {
			ar.Eval(bits[j], s)
		}
	}
}
