package parse

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/datasets"
	"repro/internal/provenance"
)

func TestAggSimple(t *testing.T) {
	p, err := Agg(provenance.AggMax, "U1 ⊗ (3,1)@MP ⊕ U2 ⊗ (5,1)@MP")
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != 2 || len(p.Tensors) != 2 {
		t.Fatalf("parsed = %s", p)
	}
	res := p.Eval(provenance.AllTrue).(provenance.Vector)
	if res.At("MP") != 5 {
		t.Fatalf("eval = %s", res.ResultString())
	}
}

func TestAggAsciiAliases(t *testing.T) {
	p, err := Agg(provenance.AggMax, "U1 (x) (3,1)@MP (+) U2 (x) (5,1)@MP")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Tensors) != 2 {
		t.Fatalf("parsed = %s", p)
	}
	q, err := Agg(provenance.AggMax, "U1*U2 (x) 4 @MP")
	if err != nil {
		t.Fatal(err)
	}
	if q.Tensors[0].Count != 1 || q.Tensors[0].Value != 4 {
		t.Fatalf("bare-number tensor = %s", q)
	}
}

func TestAggWithGuard(t *testing.T) {
	// the Example 2.2.1 shape
	src := "U1·[S1·U1 ⊗ 5 > 2] ⊗ (3,1)@MatchPoint ⊕ U2·[S2·U2 ⊗ 1 > 2] ⊗ (5,1)@MatchPoint"
	p, err := Agg(provenance.AggMax, src)
	if err != nil {
		t.Fatal(err)
	}
	res := p.Eval(provenance.AllTrue).(provenance.Vector)
	// U2's guard 1 > 2 is false: only U1's rating 3 survives
	if res.At("MatchPoint") != 3 {
		t.Fatalf("eval = %s", res.ResultString())
	}
}

func TestAggGuardOperators(t *testing.T) {
	for _, c := range []struct {
		op   string
		want float64
	}{
		{">", 0}, {">=", 0}, {"<", 3}, {"<=", 3}, {"=", 0}, {"!=", 3}, {"≠", 3},
	} {
		src := "U1·[S1 ⊗ 5 " + c.op + " 5] ⊗ (3,1)@M"
		p, err := Agg(provenance.AggMax, src)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		res := p.Eval(provenance.CancelAnnotation("S1")).(provenance.Vector)
		// with S1 cancelled the guard lhs is 0, so compare 0 OP 5
		if res.At("M") != c.want {
			t.Errorf("op %s: eval = %g, want %g", c.op, res.At("M"), c.want)
		}
	}
}

func TestAggSumsAndParens(t *testing.T) {
	p, err := Agg(provenance.AggSum, "(U1 + U2)·M1 ⊗ (1,1)@M1")
	if err != nil {
		t.Fatal(err)
	}
	// cancelling U1 leaves U2's alternative derivation
	res := p.Eval(provenance.CancelAnnotation("U1")).(provenance.Vector)
	if res.At("M1") != 1 {
		t.Fatalf("eval = %s", res.ResultString())
	}
	// cancelling both kills the tensor
	res = p.Eval(provenance.CancelSet("both", "U1", "U2")).(provenance.Vector)
	if res.At("M1") != 0 {
		t.Fatalf("eval = %s", res.ResultString())
	}
}

func TestAggQuotedNames(t *testing.T) {
	p, err := Agg(provenance.AggMax, `"user 1" ⊗ (3,1)@"Match Point"`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tensors[0].Group != "Match Point" {
		t.Fatalf("group = %q", p.Tensors[0].Group)
	}
	anns := p.Annotations()
	if anns[0] != "Match Point" && anns[1] != "Match Point" {
		t.Fatalf("annotations = %v", anns)
	}
}

func TestAggErrors(t *testing.T) {
	bad := []string{
		"",
		"U1",                // missing ⊗
		"U1 ⊗",              // missing value
		"U1 ⊗ (3,1)@",       // missing group
		"U1 ⊗ (3,1) junk ⊗", // trailing
		"U1 ⊗ (3,1] @M",     // mismatched
		"[U1 ⊗ 3] ⊗ (1,1)",  // guard missing op
		`"unterminated ⊗ (3,1)`,
		"U1·(3.5) ⊗ (1,1)", // non-natural polynomial constant
	}
	for _, src := range bad {
		if _, err := Agg(provenance.AggMax, src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

// Property: parsing the String() of generated MovieLens workloads
// round-trips (String → parse → String is a fixpoint).
func TestAggStringRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		cfg := datasets.DefaultMovieLensConfig()
		cfg.Users, cfg.Movies = 6, 3
		w := datasets.MovieLens(cfg, rand.New(rand.NewSource(seed)))
		agg := w.Prov.(*provenance.Agg)
		parsed, err := Agg(agg.Agg.Kind, agg.String())
		if err != nil {
			t.Logf("parse error: %v\nsource: %s", err, agg)
			return false
		}
		return parsed.String() == agg.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestDDPPaperExample(t *testing.T) {
	// Example 5.2.2, ASCII form.
	e, err := DDP("<c1:3,1>·<0,[d1·d2]!=0> + <0,[d2·d3]=0>·<c2:3,1>")
	if err != nil {
		t.Fatal(err)
	}
	if len(e.Execs) != 2 || e.Size() != 6 {
		t.Fatalf("parsed = %s", e)
	}
	res := e.Eval(provenance.AllTrue)
	if res.ResultString() != "⟨3,true⟩" {
		t.Fatalf("eval = %s", res.ResultString())
	}
}

func TestDDPUnicodeRoundTrip(t *testing.T) {
	src := "⟨c1:3,1⟩·⟨0,[d1·d2]≠0⟩ + ⟨0,[d2·d3]=0⟩·⟨c2:3,1⟩"
	e, err := DDP(src)
	if err != nil {
		t.Fatal(err)
	}
	// parse its own String output
	e2, err := DDP(e.String())
	if err != nil {
		t.Fatalf("re-parse: %v\nsource: %s", err, e)
	}
	if e2.String() != e.String() {
		t.Fatalf("round trip changed: %s vs %s", e, e2)
	}
}

func TestDDPAsciiStarProduct(t *testing.T) {
	e, err := DDP("<c1:2>*<c2:3>")
	if err != nil {
		t.Fatal(err)
	}
	res := e.Eval(provenance.AllTrue)
	if !strings.Contains(res.ResultString(), "5") {
		t.Fatalf("eval = %s", res.ResultString())
	}
}

func TestDDPErrors(t *testing.T) {
	bad := []string{
		"",
		"<c1>",               // missing cost
		"<c1:3,1",            // unterminated
		"<0,[d1·d2]>0>",      // bad op for condition
		"<0,[d1 d2]=0>",      // missing ·
		"<0,[d1·d2]=0> junk", // trailing
		"<<c1:3>>",           // double angle
	}
	for _, src := range bad {
		if _, err := DDP(src); err == nil {
			t.Errorf("expected error for %q", src)
		}
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Agg(provenance.AggMax, "U1 ⊗ (3,1)@M ⊕ {"); err == nil {
		t.Fatal("bad character must fail")
	}
}
