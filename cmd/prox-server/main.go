// Command prox-server runs the PROX web system of Ch. 7: the selection,
// summarization and provisioning services with the embedded web UI, over
// a synthetic MovieLens workload. Summarization runs as jobs on a
// bounded worker pool (-workers/-queue); with -data-dir set, sessions,
// job states and checkpoints are journaled to disk and a restarted
// process resumes interrupted jobs from their latest checkpoint. The
// server exposes Prometheus metrics on /metrics, optionally the
// net/http/pprof profiling handlers on /debug/pprof (behind -pprof),
// and drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	prox-server [-addr :8080] [-users 24] [-movies 8] [-seed 1]
//	            [-max-sessions 1024] [-log-level info] [-pprof]
//	            [-shutdown-timeout 10s]
//	            [-workers 2] [-queue 32]
//	            [-data-dir DIR] [-checkpoint-every 8]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/datasets"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	users := flag.Int("users", 24, "number of MovieLens users")
	movies := flag.Int("movies", 8, "number of MovieLens movies")
	seed := flag.Int64("seed", 1, "dataset generation seed")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "in-memory session cap (oldest idle evicted first)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof handlers on /debug/pprof")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain budget")
	workers := flag.Int("workers", 2, "summarization worker-pool size")
	queue := flag.Int("queue", 32, "job queue capacity (excess submissions get 429)")
	dataDir := flag.String("data-dir", "", "durability directory (empty: in-memory only)")
	checkpointEvery := flag.Int("checkpoint-every", 8, "checkpoint running jobs every K merge steps (needs -data-dir)")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prox-server: %v\n", err)
		os.Exit(2)
	}
	log := obs.NewLogger(os.Stderr, level)

	cfg := datasets.DefaultMovieLensConfig()
	cfg.Users = *users
	cfg.Movies = *movies
	w := datasets.MovieLens(cfg, rand.New(rand.NewSource(*seed)))

	reg := obs.NewRegistry()
	opts := []server.Option{
		server.WithRegistry(reg),
		server.WithLogger(log),
		server.WithMaxSessions(*maxSessions),
		server.WithWorkers(*workers),
		server.WithQueueSize(*queue),
		server.WithCheckpointEvery(*checkpointEvery),
	}
	var st *store.Store
	if *dataDir != "" {
		st, err = store.Open(*dataDir, store.Options{Observer: server.NewStoreObserver(reg)})
		if err != nil {
			log.Error("opening data dir failed", "dir", *dataDir, "err", err)
			os.Exit(1)
		}
		opts = append(opts, server.WithStore(st))
		log.Info("durability enabled", "dir", *dataDir, "checkpoint_every", *checkpointEvery)
	}

	s, err := server.New(w, opts...)
	if err != nil {
		log.Error("server startup failed", "err", err)
		os.Exit(1)
	}

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("server listening",
		"addr", *addr, "users", *users, "movies", *movies,
		"provenance_size", w.Prov.Size(), "max_sessions", *maxSessions)

	select {
	case err := <-errc:
		log.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		log.Info("shutdown signal received", "drain_budget", *shutdownTimeout)
		shutCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		start := time.Now()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Warn("drain incomplete, closing", "err", err, "after", time.Since(start))
			_ = srv.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("server error during drain", "err", err)
			os.Exit(1)
		}
		// Stop the worker pool: running jobs are interrupted but NOT
		// journaled as terminal, so a persistent store requeues them (from
		// their latest checkpoint) on the next start.
		if err := s.Shutdown(shutCtx); err != nil {
			log.Warn("job drain incomplete", "err", err)
		}
		if st != nil {
			if err := st.Compact(); err != nil {
				log.Warn("store compaction failed", "err", err)
			}
			if err := st.Close(); err != nil {
				log.Warn("store close failed", "err", err)
			}
		}
		log.Info("drained cleanly", "after", time.Since(start))
	}
}
