package datasets

import (
	"math/rand"

	"repro/internal/constraints"
	"repro/internal/ddp"
)

// DDPConfig re-exports the DDP generator configuration.
type DDPConfig = ddp.GenConfig

// DefaultDDPConfig mirrors the paper's DDP dataset parameters.
func DefaultDDPConfig() DDPConfig { return ddp.DefaultGenConfig() }

// DDP generates the DDP workload of Table 5.1: generated data-dependent
// process provenance (executions of user- and database-dependent
// transitions over the tropical semiring), with cost variables mergeable
// when they carry the same cost and database variables mergeable within
// the same relation, the cost-difference VAL-FUNC with penalty
// MaxCost·MaxTransitions, and no clustering competitor ("it is not clear
// how to construct feature vectors" for this structure). Deterministic
// in r.
func DDP(cfg DDPConfig, r *rand.Rand) *Workload {
	expr, u := ddp.Generate(cfg, r)
	pol := constraints.NewPolicy(u,
		constraints.SameTable(),
		// "user transitions have more or less the same cost": a numeric
		// tolerance, strictly coarser than the class's exact-cost
		// cancellation, so the algorithm faces real tradeoffs.
		constraints.TableScoped(ddp.TableCost, constraints.NumericWithin("cost", ddp.CostTolerance)),
		constraints.TableScoped(ddp.TableDB, constraints.SharedAttr("relation")),
	)
	return &Workload{
		Name:     "ddp",
		Prov:     expr,
		Universe: u,
		Policy:   pol,
		VF:       ddp.ValFunc(expr.Penalty()),
		MaxError: expr.Penalty(),
		// "tuple" lets Cancel Single Attribute cancel database facts
		// individually, alongside per-cost and per-relation cancellation.
		AttrNames: []string{"cost", "relation", "tuple"},
	}
}
