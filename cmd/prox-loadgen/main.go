// Command prox-loadgen replays a configurable mixed workload against a
// live prox-server and reports per-route latency percentiles, throttle
// and shed counts, and SLO attainment as JSON. It is the load half of
// the CI smoke gate (scripts/load_smoke.sh): the gate boots a server,
// runs this generator, and fails the build when a route's p99 or shed
// rate breaches its configured SLO.
//
// The generator is open-loop: arrivals are a Poisson process at -rate
// requests/second, drawn regardless of how fast the server answers, so
// a slow server accumulates outstanding requests instead of quietly
// slowing the offered load (closed-loop generators hide congestion
// collapse; open-loop ones expose it).
//
// Usage:
//
//	prox-loadgen -config load.json [-target http://127.0.0.1:8080]
//	             [-duration 10s] [-rate 50] [-report out.json] [-seed 1]
//
// The config file shapes the traffic:
//
//	{
//	  "tenants":       [{"id": "alice", "key": "alice-key", "weight": 3}],
//	  "mix":           {"summarize": 0.5, "bulk": 0.2, "ingest": 0.2, "extend": 0.1},
//	  "cacheHitRatio": 0.5,
//	  "slo": {
//	    "/api/summarize": {"p99Ms": 500, "maxShedRate": 0.05, "minRequests": 20}
//	  }
//	}
//
// tenants may be empty (anonymous single-tenant mode). mix weights are
// relative; routes with zero weight are never exercised. cacheHitRatio
// is the fraction of summarize requests that repeat earlier parameters
// (and should therefore hit the server's summary cache); the rest use
// unique parameters and force full runs. Each SLO entry applies once
// the route has minRequests samples: the measured p99 must stay at or
// under p99Ms and the shed rate (429s per request) at or under
// maxShedRate.
//
// Exit codes: 0 — ran and attained every SLO; 1 — an SLO was breached;
// 2 — configuration or setup error (unreachable server, bad config).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

// tenantConfig is one traffic source: its API key and its relative
// share of the generated requests.
type tenantConfig struct {
	ID     string  `json:"id"`
	Key    string  `json:"key"`
	Weight float64 `json:"weight"`
}

// routeSLO is a client-side objective checked after the run.
type routeSLO struct {
	P99Ms       float64 `json:"p99Ms"`
	MaxShedRate float64 `json:"maxShedRate"`
	MinRequests int     `json:"minRequests"`
}

// config is the workload shape loaded from -config.
type config struct {
	Tenants       []tenantConfig      `json:"tenants"`
	Mix           map[string]float64  `json:"mix"`
	CacheHitRatio float64             `json:"cacheHitRatio"`
	// Steps fixes the merge-step budget of every summarize/bulk/extend
	// request; 0 picks small per-request budgets (1-4 steps). Large
	// values make each request expensive — useful for flood scenarios.
	Steps int                 `json:"steps"`
	SLO   map[string]routeSLO `json:"slo"`
}

// The operations of the mix and the routes they exercise.
const (
	opSummarize = "summarize" // POST /api/summarize (interactive lane)
	opBulk      = "bulk"      // POST /api/jobs (bulk lane, fire-and-forget)
	opIngest    = "ingest"    // POST /api/ingest (streaming append)
	opExtend    = "extend"    // POST /api/extend (warm-started run)
)

var opRoutes = map[string]string{
	opSummarize: "/api/summarize",
	opBulk:      "/api/jobs",
	opIngest:    "/api/ingest",
	opExtend:    "/api/extend",
}

func (c *config) validate() error {
	total := 0.0
	for op, w := range c.Mix {
		if _, ok := opRoutes[op]; !ok {
			return fmt.Errorf("mix: unknown operation %q (want summarize|bulk|ingest|extend)", op)
		}
		if w < 0 {
			return fmt.Errorf("mix: %s weight must be non-negative, got %v", op, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("mix: weights sum to %v, need a positive total", total)
	}
	if c.CacheHitRatio < 0 || c.CacheHitRatio > 1 {
		return fmt.Errorf("cacheHitRatio must be in [0, 1], got %v", c.CacheHitRatio)
	}
	if c.Steps < 0 {
		return fmt.Errorf("steps must be non-negative, got %d", c.Steps)
	}
	for i, t := range c.Tenants {
		if t.Weight < 0 {
			return fmt.Errorf("tenants[%d]: weight must be non-negative", i)
		}
	}
	return nil
}

// sample is one completed request.
type sample struct {
	route     string
	tenant    string
	latency   time.Duration
	status    int
	cause     string // 429 body cause, "" otherwise
	transport bool   // transport-level failure (no HTTP status)
}

// routeReport is the per-route section of the JSON report.
type routeReport struct {
	Requests  int     `json:"requests"`
	OK        int     `json:"ok"`
	Errors    int     `json:"errors"` // 5xx and transport failures
	Client4xx int     `json:"client4xx"`
	Throttled int     `json:"throttled"` // 429 rate-limit/quota
	Shed      int     `json:"shed"`      // 429 cost/queue-full
	P50Ms     float64 `json:"p50Ms"`
	P90Ms     float64 `json:"p90Ms"`
	P99Ms     float64 `json:"p99Ms"`
	ShedRate  float64 `json:"shedRate"`
	// SLO echo and verdict; omitted for routes without an objective.
	SLO         *routeSLO `json:"slo,omitempty"`
	SLOAttained *bool     `json:"sloAttained,omitempty"`
	SLOSkipped  string    `json:"sloSkipped,omitempty"` // why the SLO was not judged
}

// report is the run's JSON output.
type report struct {
	Target       string                  `json:"target"`
	DurationSec  float64                 `json:"durationSec"`
	OfferedRate  float64                 `json:"offeredRate"`
	AchievedRate float64                 `json:"achievedRate"`
	Requests     int                     `json:"requests"`
	Routes       map[string]*routeReport `json:"routes"`
	ByTenant     map[string]int          `json:"byTenant,omitempty"`
	SLOBreached  bool                    `json:"sloBreached"`
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "prox-loadgen: "+format+"\n", args...)
	os.Exit(2)
}

func main() {
	cfgPath := flag.String("config", "", "workload config JSON (required)")
	target := flag.String("target", "http://127.0.0.1:8080", "base URL of the prox-server under load")
	duration := flag.Duration("duration", 10*time.Second, "length of the load phase")
	rate := flag.Float64("rate", 50, "open-loop arrival rate, requests/second")
	reportPath := flag.String("report", "", "write the JSON report here (default: stdout)")
	seed := flag.Int64("seed", 1, "workload randomness seed")
	flag.Parse()

	if *cfgPath == "" {
		fatalf("-config is required")
	}
	if *rate <= 0 {
		fatalf("-rate must be positive, got %v", *rate)
	}
	raw, err := os.ReadFile(*cfgPath)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg config
	if err := json.Unmarshal(raw, &cfg); err != nil {
		fatalf("parsing config: %v", err)
	}
	if err := cfg.validate(); err != nil {
		fatalf("config: %v", err)
	}

	g := newGenerator(&cfg, *target, *seed)
	if err := g.setup(); err != nil {
		fatalf("setup: %v", err)
	}
	rep := g.run(*duration, *rate)

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatalf("marshaling report: %v", err)
	}
	out = append(out, '\n')
	if *reportPath != "" {
		if err := os.WriteFile(*reportPath, out, 0o644); err != nil {
			fatalf("writing report: %v", err)
		}
	} else {
		_, _ = os.Stdout.Write(out)
	}
	for route, rr := range rep.Routes {
		verdict := "no-slo"
		switch {
		case rr.SLOSkipped != "":
			verdict = "slo-skipped: " + rr.SLOSkipped
		case rr.SLOAttained != nil && *rr.SLOAttained:
			verdict = "slo-attained"
		case rr.SLOAttained != nil:
			verdict = "SLO-BREACHED"
		}
		fmt.Fprintf(os.Stderr, "prox-loadgen: %-16s n=%-5d p50=%.1fms p99=%.1fms shed=%d throttled=%d errs=%d %s\n",
			route, rr.Requests, rr.P50Ms, rr.P99Ms, rr.Shed, rr.Throttled, rr.Errors, verdict)
	}
	if rep.SLOBreached {
		os.Exit(1)
	}
}

// tenantState is one tenant's runtime state: its key, its session on
// the server, and the parameter counter that makes cache-missing
// summarize requests unique.
type tenantState struct {
	cfg     tenantConfig
	session string
	mu      sync.Mutex
	unique  int
}

type generator struct {
	cfg     *config
	target  string
	client  *http.Client
	tenants []*tenantState
	// cumulative weights for O(log n) weighted picks.
	tenantCum []float64
	ops       []string
	opCum     []float64
	rng       *rand.Rand
	rngMu     sync.Mutex

	samples   []sample
	samplesMu sync.Mutex
	ingestSeq int
}

func newGenerator(cfg *config, target string, seed int64) *generator {
	g := &generator{
		cfg:    cfg,
		target: target,
		client: &http.Client{Timeout: 60 * time.Second},
		rng:    rand.New(rand.NewSource(seed)),
	}
	tenants := cfg.Tenants
	if len(tenants) == 0 {
		// Anonymous single-tenant mode: one keyless source.
		tenants = []tenantConfig{{ID: "anonymous", Weight: 1}}
	}
	cum := 0.0
	for _, t := range tenants {
		w := t.Weight
		if w == 0 {
			w = 1
		}
		cum += w
		g.tenants = append(g.tenants, &tenantState{cfg: t})
		g.tenantCum = append(g.tenantCum, cum)
	}
	cum = 0.0
	for _, op := range []string{opSummarize, opBulk, opIngest, opExtend} {
		if w := cfg.Mix[op]; w > 0 {
			cum += w
			g.ops = append(g.ops, op)
			g.opCum = append(g.opCum, cum)
		}
	}
	return g
}

// pick draws an index from a cumulative weight table.
func (g *generator) pick(cum []float64) int {
	g.rngMu.Lock()
	x := g.rng.Float64() * cum[len(cum)-1]
	g.rngMu.Unlock()
	return sort.SearchFloat64s(cum, x)
}

// float64n draws a uniform float in [0,1) under the rng lock.
func (g *generator) float64n() float64 {
	g.rngMu.Lock()
	defer g.rngMu.Unlock()
	return g.rng.Float64()
}

// expDelay draws a Poisson inter-arrival gap for the given rate.
func (g *generator) expDelay(rate float64) time.Duration {
	g.rngMu.Lock()
	u := g.rng.Float64()
	g.rngMu.Unlock()
	return time.Duration(-math.Log(1-u) / rate * float64(time.Second))
}

// do issues one authenticated JSON POST and decodes a possible 429
// cause. out may be nil.
func (g *generator) do(t *tenantState, route string, body any, out any) sample {
	b, err := json.Marshal(body)
	if err != nil {
		return sample{route: route, tenant: t.cfg.ID, transport: true}
	}
	req, err := http.NewRequest(http.MethodPost, g.target+route, bytes.NewReader(b))
	if err != nil {
		return sample{route: route, tenant: t.cfg.ID, transport: true}
	}
	req.Header.Set("Content-Type", "application/json")
	if t.cfg.Key != "" {
		req.Header.Set("Authorization", "Bearer "+t.cfg.Key)
	}
	start := time.Now()
	res, err := g.client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return sample{route: route, tenant: t.cfg.ID, latency: lat, transport: true}
	}
	defer res.Body.Close()
	s := sample{route: route, tenant: t.cfg.ID, latency: lat, status: res.StatusCode}
	if res.StatusCode == http.StatusTooManyRequests {
		var rej struct {
			Cause string `json:"cause"`
		}
		_ = json.NewDecoder(res.Body).Decode(&rej)
		s.cause = rej.Cause
		return s
	}
	if out != nil && res.StatusCode < 300 {
		_ = json.NewDecoder(res.Body).Decode(out)
	}
	return s
}

// setup opens one session per tenant; the load phase exercises them.
func (g *generator) setup() error {
	for _, t := range g.tenants {
		var sel struct {
			SessionID string `json:"sessionId"`
		}
		s := g.do(t, "/api/select", map[string]any{}, &sel)
		if s.transport {
			return fmt.Errorf("tenant %s: cannot reach %s", t.cfg.ID, g.target)
		}
		if s.status != http.StatusOK || sel.SessionID == "" {
			return fmt.Errorf("tenant %s: /api/select status %d", t.cfg.ID, s.status)
		}
		t.session = sel.SessionID
	}
	return nil
}

// summarizeBody builds the request parameters for one summarize/bulk/
// extend call: a cacheHitRatio draw repeats fixed parameters (eligible
// for the server's summary cache), the rest get a unique target
// distance so they always compute.
func (g *generator) summarizeBody(t *tenantState) map[string]any {
	body := map[string]any{
		"sessionId": t.session,
		"steps":     2,
	}
	if g.cfg.Steps > 0 {
		body["steps"] = g.cfg.Steps
	}
	if g.float64n() >= g.cfg.CacheHitRatio {
		t.mu.Lock()
		t.unique++
		n := t.unique
		t.mu.Unlock()
		// A unique-but-harmless parameter forces a distinct cache address.
		body["targetDist"] = 1e-9 * float64(n)
		if g.cfg.Steps == 0 {
			body["steps"] = 1 + n%4
		}
	}
	return body
}

// fire issues one operation for one tenant and records the sample.
func (g *generator) fire(op string, t *tenantState) {
	var s sample
	switch op {
	case opSummarize:
		s = g.do(t, "/api/summarize", g.summarizeBody(t), nil)
	case opBulk:
		s = g.do(t, "/api/jobs", g.summarizeBody(t), nil)
	case opExtend:
		body := g.summarizeBody(t)
		body["fromVersion"] = 0 // latest; falls back to from-scratch when none
		s = g.do(t, "/api/extend", body, nil)
	case opIngest:
		g.samplesMu.Lock()
		g.ingestSeq++
		n := g.ingestSeq
		g.samplesMu.Unlock()
		ann := fmt.Sprintf("LGu%d", n)
		grp := fmt.Sprintf("LGg%d", n)
		s = g.do(t, "/api/ingest", map[string]any{
			"sessionId":  t.session,
			"expression": fmt.Sprintf("%s (x) (1,1)@%s", ann, grp),
			"universe": []map[string]any{
				{"ann": ann, "table": "users", "attrs": map[string]string{"gender": "M"}},
				{"ann": grp, "table": "movies", "attrs": map[string]string{"genre": "load"}},
			},
		}, nil)
	}
	g.samplesMu.Lock()
	g.samples = append(g.samples, s)
	g.samplesMu.Unlock()
}

// run drives the open loop for d at the given arrival rate and builds
// the report.
func (g *generator) run(d time.Duration, rate float64) *report {
	var wg sync.WaitGroup
	deadline := time.Now().Add(d)
	start := time.Now()
	for time.Now().Before(deadline) {
		time.Sleep(g.expDelay(rate))
		op := g.ops[g.pick(g.opCum)]
		t := g.tenants[g.pick(g.tenantCum)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			g.fire(op, t)
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := &report{
		Target:      g.target,
		DurationSec: elapsed.Seconds(),
		OfferedRate: rate,
		Routes:      map[string]*routeReport{},
		ByTenant:    map[string]int{},
	}
	latencies := map[string][]float64{}
	for i := range g.samples {
		s := &g.samples[i]
		rr := rep.Routes[s.route]
		if rr == nil {
			rr = &routeReport{}
			rep.Routes[s.route] = rr
		}
		rr.Requests++
		rep.Requests++
		rep.ByTenant[s.tenant]++
		ms := float64(s.latency.Microseconds()) / 1000
		switch {
		case s.transport || s.status >= 500:
			rr.Errors++
		case s.status == http.StatusTooManyRequests:
			// Shed work was refused to protect the server (admission
			// control, full queue); throttled work was refused to protect
			// other tenants (rate limit, quotas).
			if s.cause == "cost" || s.cause == "queue-full" {
				rr.Shed++
			} else {
				rr.Throttled++
			}
		case s.status >= 400:
			rr.Client4xx++
		default:
			rr.OK++
			// Only successful requests feed the latency percentiles;
			// rejections return in microseconds and would mask a slow
			// server if they counted.
			latencies[s.route] = append(latencies[s.route], ms)
		}
	}
	for route, rr := range rep.Routes {
		ls := latencies[route]
		sort.Float64s(ls)
		rr.P50Ms = percentile(ls, 0.50)
		rr.P90Ms = percentile(ls, 0.90)
		rr.P99Ms = percentile(ls, 0.99)
		if rr.Requests > 0 {
			rr.ShedRate = float64(rr.Shed) / float64(rr.Requests)
		}
		if slo, ok := g.cfg.SLO[route]; ok {
			s := slo
			rr.SLO = &s
			if rr.Requests < slo.MinRequests {
				rr.SLOSkipped = fmt.Sprintf("only %d of %d required samples", rr.Requests, slo.MinRequests)
				continue
			}
			attained := (slo.P99Ms <= 0 || rr.P99Ms <= slo.P99Ms) &&
				rr.ShedRate <= slo.MaxShedRate
			rr.SLOAttained = &attained
			if !attained {
				rep.SLOBreached = true
			}
		}
	}
	if elapsed > 0 {
		rep.AchievedRate = float64(rep.Requests) / elapsed.Seconds()
	}
	return rep
}

// percentile returns the p-quantile of a sorted slice (0 for empty —
// routes that never succeeded report their failure through the error
// counters, not a fake latency).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}
