package codec

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/provenance"
)

// sampleRecords covers every variant of the tagged union, including an
// expression-carrying session record.
func sampleRecords(t *testing.T) []*Record {
	t.Helper()
	agg := provenance.NewAgg(provenance.AggMax,
		provenance.Tensor{
			Prov: provenance.Prod{Factors: []provenance.Expr{
				provenance.V("U1"),
				provenance.Cmp{Inner: provenance.P("S1", "U1"), Value: 5, Op: provenance.OpGT, Bound: 2},
			}},
			Value: 3, Count: 1, Group: "MP",
		},
		provenance.Tensor{Prov: provenance.V("U2"), Value: 5, Count: 2, Group: "MP"},
	)
	randState := uint64(0xdeadbeefcafe)
	return []*Record{
		{Seq: 1, Session: &SessionRecord{
			ID:   "s1",
			Prov: agg,
			Universe: []UniverseEntry{
				{Ann: "U1", Table: "users", Attrs: map[string]string{"gender": "F"}},
				{Ann: "U2", Table: "users"},
			},
		}},
		{Seq: 2, Job: &JobRecord{
			ID: "j1", SessionID: "s1", State: "queued",
			Params:      JobParams{WDist: 0.7, WSize: 0.3, Steps: 6, Class: "cancel-single", TimeoutMS: 5000},
			SubmittedMS: 1722800000000,
		}},
		{Seq: 3, Checkpoint: &CheckpointRecord{
			JobID: "j1",
			Checkpoint: &core.Checkpoint{
				Step: 1,
				Steps: []core.Step{{
					A: "U1", B: "U2",
					Members: []provenance.Annotation{"U1", "U2"},
					New:     "users:gender", Score: 0.42, Dist: 0.1, Size: 3,
				}},
				InitDist:  0.05,
				RandState: &randState,
			},
		}},
		{Seq: 4, Summary: &SummaryRecord{
			SessionID: "s1", Class: "cancel-single",
			Steps: []StepRecord{{
				Members: []string{"U1", "U2"}, New: "users:gender",
				Score: 0.42, Dist: 0.1, Size: 3,
			}},
			Dist: 0.1, StopReason: "max-steps",
		}},
		{Seq: 5, SessionDrop: &SessionDropRecord{ID: "s1"}},
		{Seq: 6, CacheEntry: &CacheEntryRecord{
			Key: "0a1b2c3d", Class: "cancel-single",
			Steps: []StepRecord{{
				Members: []string{"U1", "U2"}, New: "users:gender",
				Score: 0.42, Dist: 0.1, Size: 3,
			}},
			Dist: 0.1, StopReason: "max-steps", CreatedMS: 1722800001000,
		}},
		{Seq: 7, CacheDrop: &CacheDropRecord{Key: "0a1b2c3d"}},
		{Seq: 8, CacheFlush: &CacheFlushRecord{}},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for _, rec := range sampleRecords(t) {
		data, err := EncodeRecord(rec)
		if err != nil {
			t.Fatalf("encode seq %d: %v", rec.Seq, err)
		}
		got, err := DecodeRecord(data)
		if err != nil {
			t.Fatalf("decode seq %d: %v", rec.Seq, err)
		}
		data2, err := EncodeRecord(got)
		if err != nil {
			t.Fatalf("re-encode seq %d: %v", rec.Seq, err)
		}
		if !bytes.Equal(data, data2) {
			t.Fatalf("seq %d not stable under round-trip:\n%s\n%s", rec.Seq, data, data2)
		}
	}
}

func TestRecordVariantValidation(t *testing.T) {
	if _, err := EncodeRecord(&Record{Seq: 1}); err == nil {
		t.Fatal("empty record must not encode")
	}
	if _, err := EncodeRecord(&Record{
		Seq:         1,
		SessionDrop: &SessionDropRecord{ID: "a"},
		Job:         &JobRecord{ID: "j"},
	}); err == nil {
		t.Fatal("two-variant record must not encode")
	}
	if _, err := DecodeRecord([]byte(`{"seq":1}`)); err == nil {
		t.Fatal("variant-less payload must not decode")
	}
	if _, err := DecodeRecord([]byte(`{"seq":1,"sessionDrop":{"id":"a"},"job":{"id":"j"}}`)); err == nil {
		t.Fatal("two-variant payload must not decode")
	}
}

func TestCheckpointRecordValidation(t *testing.T) {
	// Step/trace mismatch is rejected.
	if _, err := DecodeRecord([]byte(`{"seq":1,"checkpoint":{"jobId":"j","step":2,"steps":[],"initDist":0}}`)); err == nil {
		t.Fatal("step/trace length mismatch must not decode")
	}
	// A step with fewer than two members cannot be a merge.
	if _, err := DecodeRecord([]byte(`{"seq":1,"checkpoint":{"jobId":"j","step":1,"steps":[{"members":["a"],"new":"x"}],"initDist":0}}`)); err == nil {
		t.Fatal("single-member step must not decode")
	}
}

func TestStepsRoundTrip(t *testing.T) {
	steps := []core.Step{
		{A: "a", B: "b", Members: []provenance.Annotation{"a", "b"}, New: "ab", Score: 1.5, Dist: 0.25, Size: 4},
		{A: "ab", B: "c", Members: []provenance.Annotation{"ab", "c", "d"}, New: "abcd", Score: 0.5, Dist: 0.125, Size: 2},
	}
	back, err := StepsToCore(StepsFromCore(steps))
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(steps) {
		t.Fatalf("got %d steps, want %d", len(back), len(steps))
	}
	for i := range steps {
		a, b := steps[i], back[i]
		if a.A != b.A || a.B != b.B || a.New != b.New || a.Score != b.Score || a.Dist != b.Dist || a.Size != b.Size || len(a.Members) != len(b.Members) {
			t.Fatalf("step %d changed: %+v -> %+v", i, a, b)
		}
	}
}

// TestReplayLog pins the happy path: every appended record comes back in
// order, and the reported valid length is the whole stream.
func TestReplayLog(t *testing.T) {
	recs := sampleRecords(t)
	var buf bytes.Buffer
	for _, rec := range recs {
		if _, err := AppendRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	total := int64(buf.Len())

	var seqs []uint64
	valid, err := ReplayRecords(bytes.NewReader(buf.Bytes()), func(r *Record) error {
		seqs = append(seqs, r.Seq)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if valid != total {
		t.Fatalf("valid = %d, want full stream %d", valid, total)
	}
	if len(seqs) != len(recs) {
		t.Fatalf("replayed %d records, want %d", len(seqs), len(recs))
	}
	for i, s := range seqs {
		if s != recs[i].Seq {
			t.Fatalf("record %d has seq %d, want %d", i, s, recs[i].Seq)
		}
	}
}

// TestReplayTornTail pins the crash-tolerance contract: truncating the
// stream at every possible byte offset must never error or panic, and
// must replay exactly the records that fit whole before the cut.
func TestReplayTornTail(t *testing.T) {
	recs := sampleRecords(t)
	var buf bytes.Buffer
	var ends []int64 // cumulative end offset of each frame
	for _, rec := range recs {
		if _, err := AppendRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, int64(buf.Len()))
	}
	data := buf.Bytes()

	for cut := 0; cut <= len(data); cut++ {
		wantCount := 0
		var wantValid int64
		for i, end := range ends {
			if int64(cut) >= end {
				wantCount = i + 1
				wantValid = end
			}
		}
		count := 0
		valid, err := ReplayRecords(bytes.NewReader(data[:cut]), func(*Record) error {
			count++
			return nil
		})
		if err != nil {
			t.Fatalf("cut %d: unexpected error %v", cut, err)
		}
		if count != wantCount || valid != wantValid {
			t.Fatalf("cut %d: replayed %d records (%d valid bytes), want %d (%d)", cut, count, valid, wantCount, wantValid)
		}
	}
}

// TestReplayCorruptedTail pins that bit-flips in the tail are discarded
// (CRC mismatch) rather than decoded, and that a bit-flip in a middle
// frame stops the replay there — the suffix is unreachable but the valid
// prefix survives.
func TestReplayCorruptedTail(t *testing.T) {
	recs := sampleRecords(t)
	var buf bytes.Buffer
	var ends []int64
	for _, rec := range recs {
		if _, err := AppendRecord(&buf, rec); err != nil {
			t.Fatal(err)
		}
		ends = append(ends, int64(buf.Len()))
	}
	data := buf.Bytes()

	// Flip a byte inside the last frame's payload.
	corrupt := append([]byte(nil), data...)
	corrupt[len(corrupt)-1] ^= 0xff
	count := 0
	valid, err := ReplayRecords(bytes.NewReader(corrupt), func(*Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != len(recs)-1 || valid != ends[len(ends)-2] {
		t.Fatalf("corrupted tail: replayed %d (%d bytes), want %d (%d)", count, valid, len(recs)-1, ends[len(ends)-2])
	}

	// Flip a byte inside the first frame: nothing valid.
	corrupt = append([]byte(nil), data...)
	corrupt[frameHeaderLen+1] ^= 0xff
	count = 0
	valid, err = ReplayRecords(bytes.NewReader(corrupt), func(*Record) error { count++; return nil })
	if err != nil {
		t.Fatal(err)
	}
	if count != 0 || valid != 0 {
		t.Fatalf("corrupted head: replayed %d (%d bytes), want 0 (0)", count, valid)
	}
}

// TestReplayAbsurdLength pins the allocation guard: a length prefix over
// MaxFrameLen is treated as tail corruption, not a 4 GiB allocation.
func TestReplayAbsurdLength(t *testing.T) {
	frame := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	valid, err := ReplayFrames(bytes.NewReader(frame), func([]byte) error {
		t.Fatal("callback must not run")
		return nil
	})
	if err != nil || valid != 0 {
		t.Fatalf("valid = %d, err = %v; want 0, nil", valid, err)
	}
}

// TestReplayCallbackError pins that fn errors abort the replay (they are
// real corruption or caller failures, not torn tails).
func TestReplayCallbackError(t *testing.T) {
	var buf bytes.Buffer
	if _, err := AppendRecord(&buf, sampleRecords(t)[4]); err != nil {
		t.Fatal(err)
	}
	boom := errors.New("boom")
	if _, err := ReplayRecords(bytes.NewReader(buf.Bytes()), func(*Record) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}

	// A CRC-valid frame whose payload is not a valid record is a hard
	// error too.
	buf.Reset()
	if _, err := AppendFrame(&buf, []byte(`{"seq":1}`)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayRecords(bytes.NewReader(buf.Bytes()), func(*Record) error { return nil }); err == nil {
		t.Fatal("CRC-valid but undecodable frame must error")
	}
}

func TestAppendFrameTooLarge(t *testing.T) {
	var buf bytes.Buffer
	if _, err := AppendFrame(&buf, make([]byte, MaxFrameLen+1)); err == nil {
		t.Fatal("over-limit payload must not frame")
	}
}
