// Package prox is the public API of this repository: a Go implementation
// of PROX — approximated summarization of data provenance (Ainy, Bourhis,
// Davidson, Deutch, Milo; EDBT 2016 / TAU thesis).
//
// PROX summarizes semiring provenance expressions: given a provenance
// polynomial over annotations (users, tuples, movies, database facts), it
// searches for a mapping of annotations to coarser summary annotations so
// that the summarized expression is much smaller yet behaves almost
// identically under a class of truth valuations — so explanations stay
// readable and hypothetical-scenario provisioning stays accurate while
// getting faster.
//
// The package re-exports the library's building blocks:
//
//   - the provenance algebra (Agg, Tensor, Expr, evaluation, mappings),
//   - valuation classes and combiner functions (Sec. 2.3, 3.2),
//   - the distance machinery with its sampling estimator (Sec. 4.1),
//   - semantic constraints and taxonomies (Sec. 3.2),
//   - the summarization algorithm (Algorithm 1) and the Clustering and
//     Random baselines (Ch. 6),
//   - the three dataset generators (Ch. 5), the experiment harness
//     (Ch. 6), the K-relation/workflow substrate (Ch. 2) and the PROX
//     web system (Ch. 7).
//
// Quick start:
//
//	p := prox.NewAgg(prox.AggMax,
//	    prox.Tensor{Prov: prox.V("U1"), Value: 3, Count: 1, Group: "MatchPoint"},
//	    prox.Tensor{Prov: prox.V("U2"), Value: 5, Count: 1, Group: "MatchPoint"},
//	)
//	u := prox.NewUniverse()
//	u.Add("U1", "users", prox.Attrs{"gender": "F"})
//	u.Add("U2", "users", prox.Attrs{"gender": "F"})
//	sum, err := prox.Summarize(p, prox.Options{
//	    Universe: u,
//	    Rules:    []prox.Rule{prox.SameTable(), prox.SharedAttr("gender")},
//	    WDist:    0.5, WSize: 0.5,
//	})
package prox

import (
	"io"
	"math/rand"

	"repro/internal/baseline"
	"repro/internal/cluster"
	"repro/internal/codec"
	"repro/internal/constraints"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/ddp"
	"repro/internal/distance"
	"repro/internal/experiments"
	"repro/internal/krel"
	"repro/internal/parse"
	"repro/internal/provenance"
	"repro/internal/server"
	"repro/internal/taxonomy"
	"repro/internal/valuation"
	"repro/internal/workflow"
)

// --- provenance algebra ---

// Core vocabulary types of the provenance model (Ch. 2–3).
type (
	// Annotation is a basic provenance token.
	Annotation = provenance.Annotation
	// Attrs holds the semantic attributes of an annotation's object.
	Attrs = provenance.Attrs
	// Universe registers annotation metadata (tables and attributes).
	Universe = provenance.Universe
	// Expr is a node of an N[Ann] provenance polynomial.
	Expr = provenance.Expr
	// Tensor pairs a polynomial with an aggregated (value, count).
	Tensor = provenance.Tensor
	// Agg is an aggregated provenance expression (⊕ of tensors).
	Agg = provenance.Agg
	// AggKind selects the aggregation monoid.
	AggKind = provenance.AggKind
	// Mapping is a summarization homomorphism h : Ann → Ann'.
	Mapping = provenance.Mapping
	// Groups is the inverse view of a cumulative mapping.
	Groups = provenance.Groups
	// Valuation is a truth valuation on annotations.
	Valuation = provenance.Valuation
	// Combiner is the φ function extending valuations to summaries.
	Combiner = provenance.Combiner
	// Result is the value of an expression under a valuation.
	Result = provenance.Result
	// Vector is a group-keyed aggregation result.
	Vector = provenance.Vector
	// Scalar is a single-value result.
	Scalar = provenance.Scalar
	// Expression is the interface Algorithm 1 summarizes.
	Expression = provenance.Expression
)

// Aggregation monoids.
const (
	AggSum   = provenance.AggSum
	AggMax   = provenance.AggMax
	AggMin   = provenance.AggMin
	AggCount = provenance.AggCount
)

// Reserved mapping targets: Zero discards an annotation, One keeps its
// data unconditionally.
const (
	Zero = provenance.Zero
	One  = provenance.One
)

// NewUniverse returns an empty annotation registry.
func NewUniverse() *Universe { return provenance.NewUniverse() }

// V is a single-annotation polynomial.
func V(a Annotation) Expr { return provenance.V(a) }

// P is a product of annotations.
func P(anns ...Annotation) Expr { return provenance.P(anns...) }

// NewAgg builds and simplifies an aggregated provenance expression.
func NewAgg(kind AggKind, tensors ...Tensor) *Agg { return provenance.NewAgg(kind, tensors...) }

// NewMapping returns an identity mapping.
func NewMapping() Mapping { return provenance.NewMapping() }

// MergeMapping maps the members to the summary annotation.
func MergeMapping(to Annotation, members ...Annotation) Mapping {
	return provenance.MergeMapping(to, members...)
}

// GroupsOf inverts a cumulative mapping over the original annotations.
func GroupsOf(original []Annotation, cumulative Mapping) Groups {
	return provenance.GroupsOf(original, cumulative)
}

// CancelAnnotation is the valuation cancelling exactly a.
func CancelAnnotation(a Annotation) Valuation { return provenance.CancelAnnotation(a) }

// CancelSet is the valuation cancelling every annotation in set.
func CancelSet(label string, set ...Annotation) Valuation {
	return provenance.CancelSet(label, set...)
}

// AllTrue keeps every annotation.
var AllTrue = provenance.AllTrue

// Combiners: φ = OR cancels a summary only when all members are
// cancelled; φ = AND cancels it when any member is.
var (
	CombineOr  = provenance.CombineOr
	CombineAnd = provenance.CombineAnd
)

// ExtendValuation lifts a valuation to summary annotations (v^{h,φ}).
func ExtendValuation(v Valuation, groups Groups, phi Combiner) Valuation {
	return provenance.ExtendValuation(v, groups, phi)
}

// --- valuation classes and distances ---

// Valuation classes of Table 5.1 and the distance machinery of Sec. 3.2.
type (
	// Class is a set of valuations V_Ann.
	Class = valuation.Class
	// ValFunc measures the effect of one valuation (Sec. 3.2).
	ValFunc = distance.ValFunc
	// Estimator computes distances exactly or by sampling (Prop. 4.1.2).
	Estimator = distance.Estimator
)

// NewCancelSingleAnnotation builds the per-annotation cancellation class.
func NewCancelSingleAnnotation(anns []Annotation) Class {
	return valuation.NewCancelSingleAnnotation(anns)
}

// NewCancelSingleAttribute builds the per-attribute cancellation class.
func NewCancelSingleAttribute(u *Universe, anns []Annotation, attrNames ...string) Class {
	return valuation.NewCancelSingleAttribute(u, anns, attrNames...)
}

// NewAllValuations builds the full 2^n valuation space (exact DIST-COMP;
// #P-hard in general, enumerable only for small n).
func NewAllValuations(anns []Annotation) Class { return valuation.NewAll(anns) }

// NewExplicitClass wraps an explicit valuation list as a class (the
// variant where V_Ann is given as input).
func NewExplicitClass(label string, vals ...Valuation) Class {
	return &valuation.Explicit{Label: label, Vals: vals}
}

// VAL-FUNC constructors (Sec. 3.2): expected error, disagreement
// fraction, Euclidean distance over aggregation vectors, and the DDP cost
// difference.
func AbsDiff() ValFunc                   { return distance.AbsDiff(nil) }
func Disagree() ValFunc                  { return distance.Disagree(nil) }
func Euclidean() ValFunc                 { return distance.Euclidean() }
func DDPValFunc(penalty float64) ValFunc { return ddp.ValFunc(penalty) }

// Weight assigns a weighting w(v) to valuations; ValFunc constructors
// taking a Weight use it to bias the distance (Definition 3.2.2).
type Weight = distance.Weight

// WeightedAbsDiff and WeightedDisagree are the weighted variants of the
// expected-error and disagreeing-valuations VAL-FUNCs.
func WeightedAbsDiff(w Weight) ValFunc  { return distance.AbsDiff(w) }
func WeightedDisagree(w Weight) ValFunc { return distance.Disagree(w) }

// TrustWeight is the joint-probability weighting over per-annotation
// trust probabilities (annotations absent from trust default to p0).
func TrustWeight(trust map[Annotation]float64, p0 float64, anns []Annotation) Weight {
	return distance.TrustWeight(trust, p0, anns)
}

// SampleSize returns a Chebyshev-sufficient Monte-Carlo sample count for
// the (eps, delta) guarantee of Prop. 4.1.2.
func SampleSize(eps, delta, varBound float64) int {
	return distance.SampleSize(eps, delta, varBound)
}

// --- constraints and taxonomies ---

// Semantic constraints (Sec. 3.2) and taxonomy support.
type (
	// Rule is a pairwise mergeability predicate.
	Rule = constraints.Rule
	// Policy combines rules with summary-annotation naming.
	Policy = constraints.Policy
	// Taxonomy is a rooted concept tree with Wu–Palmer distances.
	Taxonomy = taxonomy.Tree
)

// Constraint rules: same input table, shared attribute, taxonomy
// common-ancestor, numeric tolerance, per-table scoping, and the
// everything-goes rule.
func SameTable() Rule                             { return constraints.SameTable() }
func SharedAttr(names ...string) Rule             { return constraints.SharedAttr(names...) }
func CommonAncestor(t *Taxonomy) Rule             { return constraints.CommonAncestor(t) }
func NumericWithin(attr string, tol float64) Rule { return constraints.NumericWithin(attr, tol) }
func TableScoped(table string, inner Rule) Rule   { return constraints.TableScoped(table, inner) }
func AnyRule() Rule                               { return constraints.Any() }
func NeverRule() Rule                             { return constraints.Never() }

// NewPolicy builds a merge policy over the universe.
func NewPolicy(u *Universe, rules ...Rule) *Policy { return constraints.NewPolicy(u, rules...) }

// NewTaxonomy creates a taxonomy rooted at root.
func NewTaxonomy(root Annotation) *Taxonomy { return taxonomy.New(root) }

// GenerateTaxonomy builds a synthetic WordNet-style concept tree.
func GenerateTaxonomy(root Annotation, branching, depth int, r *rand.Rand) *Taxonomy {
	return taxonomy.Generate(root, branching, depth, r)
}

// TaxonomyConsistent restricts a valuation class to taxonomy-consistent
// valuations (cancelling a concept cancels its subtree).
func TaxonomyConsistent(inner Class, t *Taxonomy) Class {
	return taxonomy.Consistent(inner, t)
}

// --- summarization ---

// The summarization algorithm (Algorithm 1) and its outputs.
type (
	// SummarizerConfig parameterizes Algorithm 1.
	SummarizerConfig = core.Config
	// Summarizer runs Algorithm 1.
	Summarizer = core.Summarizer
	// Summary is a summarization result with its merge trace.
	Summary = core.Summary
	// Step is one merge performed by the algorithm.
	Step = core.Step
)

// NewSummarizer validates the configuration and builds a Summarizer.
func NewSummarizer(cfg SummarizerConfig) (*Summarizer, error) { return core.New(cfg) }

// Options is the high-level configuration of Summarize: it assembles the
// policy, valuation class and estimator from simple parts.
type Options struct {
	// Universe registers the annotations (required).
	Universe *Universe
	// Rules are the semantic constraints (default: SameTable).
	Rules []Rule
	// Taxonomy enables LCA naming and taxonomy tie-breaks (optional).
	Taxonomy *Taxonomy
	// Class is the valuation class (default: cancel-single-annotation
	// over the expression's annotations).
	Class Class
	// Phi is the combiner (default OR).
	Phi Combiner
	// VF is the VAL-FUNC (default Euclidean).
	VF *ValFunc
	// MaxError normalizes distances into [0,1] (0 disables).
	MaxError float64
	// WDist and WSize weight the candidate score (default 0.5/0.5).
	WDist, WSize float64
	// TargetSize, TargetDist and MaxSteps are the stop conditions.
	TargetSize int
	TargetDist float64
	MaxSteps   int
}

// Summarize runs Algorithm 1 on p with the given high-level options.
func Summarize(p Expression, o Options) (*Summary, error) {
	rules := o.Rules
	if len(rules) == 0 {
		rules = []Rule{SameTable()}
	}
	pol := NewPolicy(o.Universe, rules...)
	if o.Taxonomy != nil {
		pol = pol.WithTaxonomy(o.Taxonomy)
	}
	class := o.Class
	if class == nil {
		class = NewCancelSingleAnnotation(p.Annotations())
	}
	phi := o.Phi
	if phi == nil {
		phi = CombineOr
	}
	vf := Euclidean()
	if o.VF != nil {
		vf = *o.VF
	}
	wd, ws := o.WDist, o.WSize
	if wd == 0 && ws == 0 {
		wd, ws = 0.5, 0.5
	}
	s, err := core.New(core.Config{
		Policy: pol,
		Estimator: &distance.Estimator{
			Class: class, Phi: phi, VF: vf, MaxError: o.MaxError,
		},
		WDist: wd, WSize: ws,
		TargetSize: o.TargetSize,
		TargetDist: o.TargetDist,
		MaxSteps:   o.MaxSteps,
	})
	if err != nil {
		return nil, err
	}
	return s.Summarize(p)
}

// --- baselines and clustering ---

// The Ch. 6 competitors.
type (
	// BaselineConfig configures the Random and Clustering baselines.
	BaselineConfig = baseline.Config
	// RandomBaseline merges random constraint-satisfying pairs.
	RandomBaseline = baseline.Random
	// ClusteringBaseline replays HAC dendrograms as summarizations.
	ClusteringBaseline = baseline.Clustering
	// ClusterMergeStep is one dendrogram merge in annotation form.
	ClusterMergeStep = baseline.MergeStep
	// Linkage selects the HAC linkage criterion.
	Linkage = cluster.Linkage
	// Dendrogram is an HAC merge history.
	Dendrogram = cluster.Dendrogram
)

// HAC linkage criteria (Sec. 6.2).
const (
	SingleLinkage          = cluster.Single
	CompleteLinkage        = cluster.Complete
	AverageLinkage         = cluster.Average
	WeightedAverageLinkage = cluster.WeightedAverage
	CentroidLinkage        = cluster.Centroid
	MedianLinkage          = cluster.Median
	WardLinkage            = cluster.Ward
)

// NewRandomBaseline builds the Random competitor.
func NewRandomBaseline(cfg BaselineConfig, r *rand.Rand) (*RandomBaseline, error) {
	return baseline.NewRandom(cfg, r)
}

// NewClusteringBaseline builds the HAC-replay competitor.
func NewClusteringBaseline(cfg BaselineConfig) (*ClusteringBaseline, error) {
	return baseline.NewClustering(cfg)
}

// HAC runs hierarchical agglomerative clustering (see internal/cluster).
func HAC(n int, dissim func(i, j int) float64, linkage Linkage, can cluster.CanMerge) (*Dendrogram, error) {
	return cluster.Run(n, dissim, linkage, can)
}

// PearsonDissimilarity is 1 − r over common keys of sparse vectors.
func PearsonDissimilarity(a, b map[string]float64) float64 {
	return cluster.PearsonDissimilarity(a, b)
}

// --- datasets, experiments, workflow, DDP, server ---

// Dataset workloads (Ch. 5) and the experiment harness (Ch. 6).
type (
	// Workload is a ready-to-summarize dataset instance.
	Workload = datasets.Workload
	// ClassKind selects a Table 5.1 valuation class.
	ClassKind = datasets.ClassKind
	// MovieLensConfig sizes the synthetic MovieLens generator.
	MovieLensConfig = datasets.MovieLensConfig
	// WikipediaConfig sizes the synthetic Wikipedia generator.
	WikipediaConfig = datasets.WikipediaConfig
	// DDPConfig sizes the DDP generator.
	DDPConfig = datasets.DDPConfig
	// ExperimentOptions selects dataset/class/averaging for experiments.
	ExperimentOptions = experiments.Options
	// ExperimentTable is a printable experiment result.
	ExperimentTable = experiments.Table
)

// Valuation class kinds.
const (
	ClassCancelSingleAnnotation = datasets.CancelSingleAnnotation
	ClassCancelSingleAttribute  = datasets.CancelSingleAttribute
)

// Dataset constructors with paper-like default configurations.
func DefaultMovieLensConfig() MovieLensConfig { return datasets.DefaultMovieLensConfig() }
func DefaultWikipediaConfig() WikipediaConfig { return datasets.DefaultWikipediaConfig() }
func DefaultDDPConfig() DDPConfig             { return datasets.DefaultDDPConfig() }

// NewMovieLensWorkload generates the synthetic MovieLens workload.
func NewMovieLensWorkload(cfg MovieLensConfig, r *rand.Rand) *Workload {
	return datasets.MovieLens(cfg, r)
}

// NewWikipediaWorkload generates the synthetic Wikipedia workload.
func NewWikipediaWorkload(cfg WikipediaConfig, r *rand.Rand) *Workload {
	return datasets.Wikipedia(cfg, r)
}

// NewDDPWorkload generates the DDP workload.
func NewDDPWorkload(cfg DDPConfig, r *rand.Rand) *Workload {
	return datasets.DDP(cfg, r)
}

// RunExperimentSuite regenerates every Ch. 6 figure for one dataset.
func RunExperimentSuite(o ExperimentOptions, quick bool) ([]*ExperimentTable, error) {
	return experiments.Suite(o, quick)
}

// The K-relation engine and workflow model (Ch. 2 substrate).
type (
	// Relation is a provenance-annotated relation.
	Relation = krel.Relation
	// WorkflowSpec is a module graph with dataflow edges.
	WorkflowSpec = workflow.Spec
	// WorkflowDB is the global persistent state of a workflow.
	WorkflowDB = workflow.DB
)

// NewRelation creates an empty K-relation.
func NewRelation(name string, cols ...string) *Relation { return krel.NewRelation(name, cols...) }

// NewWorkflowDB returns an empty workflow database.
func NewWorkflowDB() *WorkflowDB { return workflow.NewDB() }

// NewMovieWorkflow assembles the Fig. 2.1 movie-rating workflow.
func NewMovieWorkflow(kind AggKind, platforms map[string]string) (*WorkflowSpec, error) {
	return workflow.MovieWorkflow(kind, platforms)
}

// DDP provenance (Ch. 5, [17]).
type (
	// DDPExpr is a data-dependent-process provenance expression.
	DDPExpr = ddp.Expr
	// DDPExecution is a product of transitions.
	DDPExecution = ddp.Execution
	// DDPTransition is one user- or database-dependent transition.
	DDPTransition = ddp.Transition
	// DDPCostTruth is the value of a DDP expression under a valuation.
	DDPCostTruth = ddp.CostTruth
)

// NewDDPExpr builds a DDP expression with the paper's bounds.
func NewDDPExpr(execs ...DDPExecution) *DDPExpr { return ddp.NewExpr(execs...) }

// DDPUser builds a user-dependent transition ⟨cost, 1⟩.
func DDPUser(costVar Annotation, cost float64) DDPTransition { return ddp.User(costVar, cost) }

// DDPCond builds a database-dependent transition ⟨0, [d1·d2 op 0]⟩.
func DDPCond(d1, d2 Annotation, nonZero bool) DDPTransition { return ddp.Cond(d1, d2, nonZero) }

// ParseAgg reads an aggregated provenance expression in the paper's
// notation (ASCII aliases accepted), e.g.
// "U1·[S1·U1 ⊗ 5 > 2] ⊗ (3,1)@MatchPoint ⊕ U2 ⊗ (5,1)@MatchPoint".
func ParseAgg(kind AggKind, src string) (*Agg, error) { return parse.Agg(kind, src) }

// ParseDDP reads a DDP expression, e.g.
// "<c1:3,1>·<0,[d1·d2]!=0> + <0,[d2·d3]=0>·<c2:3,1>".
func ParseDDP(src string) (*DDPExpr, error) { return parse.DDP(src) }

// Persistence (JSON bundles of expressions, universes and taxonomies,
// plus summary export).
type Bundle = codec.Bundle

// SaveBundle writes a workload bundle as JSON.
func SaveBundle(w io.Writer, b *Bundle) error { return codec.Save(w, b) }

// LoadBundle reads a workload bundle written by SaveBundle.
func LoadBundle(r io.Reader) (*Bundle, error) { return codec.Load(r) }

// WriteSummaryJSON exports a summarization result as indented JSON.
func WriteSummaryJSON(w io.Writer, s *Summary) error { return codec.WriteSummary(w, s) }

// The PROX web system (Ch. 7).
type ProxServer = server.Server

// NewProxServer builds the PROX application server over a MovieLens
// workload; serve its Handler with net/http. Construction can fail when
// a persistence store is attached and its replay does not match the
// workload.
func NewProxServer(w *Workload) (*ProxServer, error) { return server.New(w) }
