package server

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/tenant"
)

// testTenants builds a two-tenant registry: "alice" with generous
// limits and "bob" whose limits each test overrides as needed.
func testTenants(t *testing.T, cfgs ...tenant.Config) *tenant.Registry {
	t.Helper()
	reg, err := tenant.NewRegistry(cfgs)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func generous(id, key string) tenant.Config {
	return tenant.Config{
		ID:                id,
		KeySHA256:         tenant.HashKey(key),
		RatePerSec:        1000,
		Burst:             1000,
		MaxConcurrentJobs: 100,
		MaxSessions:       100,
	}
}

// postAs is post with a tenant API key attached.
func postAs(t *testing.T, key, url string, body, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Authorization", "Bearer "+key)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if out != nil {
		if err := json.NewDecoder(res.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return res
}

// selectAs opens a session as the given tenant and returns its id.
func selectAs(t *testing.T, ts *httptest.Server, key string) string {
	t.Helper()
	var sel selectResponse
	res := postAs(t, key, ts.URL+"/api/select", selectRequest{}, &sel)
	if res.StatusCode != http.StatusOK {
		t.Fatalf("select status = %d", res.StatusCode)
	}
	return sel.SessionID
}

// TestAuthRequired: with a tenant registry every /api route demands a
// key; missing and unknown keys are 401 (counted), a valid key passes,
// and the open endpoints (/ and /metrics) stay keyless.
func TestAuthRequired(t *testing.T) {
	reg := testTenants(t, generous("alice", "alice-key"))
	s, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))

	// No key.
	res, err := http.Get(ts.URL + "/api/movies")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusUnauthorized {
		t.Fatalf("keyless status = %d, want 401", res.StatusCode)
	}
	if h := res.Header.Get("WWW-Authenticate"); h == "" {
		t.Fatal("401 without WWW-Authenticate")
	}
	// Wrong key.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/movies", nil)
	req.Header.Set("X-Prox-Key", "not-a-key")
	res2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res2.Body.Close()
	if res2.StatusCode != http.StatusUnauthorized {
		t.Fatalf("bad-key status = %d, want 401", res2.StatusCode)
	}
	if got := s.met.authFail.Value(); got != 2 {
		t.Fatalf("prox_auth_failures_total = %v, want 2", got)
	}
	// Valid key via both header forms.
	req3, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/movies", nil)
	req3.Header.Set("Authorization", "Bearer alice-key")
	res3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	res3.Body.Close()
	if res3.StatusCode != http.StatusOK {
		t.Fatalf("bearer-key status = %d, want 200", res3.StatusCode)
	}
	req4, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/movies", nil)
	req4.Header.Set("X-Prox-Key", "alice-key")
	res4, err := http.DefaultClient.Do(req4)
	if err != nil {
		t.Fatal(err)
	}
	res4.Body.Close()
	if res4.StatusCode != http.StatusOK {
		t.Fatalf("x-prox-key status = %d, want 200", res4.StatusCode)
	}
	// Open endpoints need no key.
	for _, path := range []string{"/", "/metrics"} {
		r, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("GET %s without key = %d, want 200", path, r.StatusCode)
		}
	}
}

// TestTenantSessionIsolation: another tenant's session id answers 404 —
// indistinguishable from a missing session — on every session-scoped
// route.
func TestTenantSessionIsolation(t *testing.T) {
	reg := testTenants(t, generous("alice", "alice-key"), generous("bob", "bob-key"))
	_, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))

	sid := selectAs(t, ts, "alice-key")

	// Owner can use it.
	var ok summarizeResponse
	if res := postAs(t, "alice-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: sid, Steps: 1}, &ok); res.StatusCode != http.StatusOK {
		t.Fatalf("owner summarize status = %d", res.StatusCode)
	}
	// The other tenant cannot, and cannot tell the session exists.
	var errResp map[string]string
	if res := postAs(t, "bob-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: sid, Steps: 1}, &errResp); res.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign summarize status = %d, want 404", res.StatusCode)
	}
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/api/step?sessionId="+sid+"&n=0", nil)
	req.Header.Set("X-Prox-Key", "bob-key")
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign step status = %d, want 404", res.StatusCode)
	}
}

// retryAfterOf parses a response's Retry-After header, failing the test
// when it is absent or malformed.
func retryAfterOf(t *testing.T, res *http.Response, ctx string) int {
	t.Helper()
	h := res.Header.Get("Retry-After")
	if h == "" {
		t.Fatalf("%s: 429 without Retry-After", ctx)
	}
	secs, err := strconv.Atoi(h)
	if err != nil {
		t.Fatalf("%s: Retry-After %q is not an integer: %v", ctx, h, err)
	}
	return secs
}

// TestRejectionSemantics is the 429 contract, as a table over the
// rejection causes: every refusal carries a Retry-After header with a
// sane (1s..1h) value, names its cause in the body, and increments its
// own prox_http_rejected_total{cause} counter — and only its own.
func TestRejectionSemantics(t *testing.T) {
	cases := []struct {
		name  string
		cause string
		// build returns a server and a request func expected to be
		// rejected with the case's cause.
		build func(t *testing.T) (*Server, func() *http.Response)
	}{
		{
			name:  "queue full",
			cause: rejectQueueFull,
			build: func(t *testing.T) (*Server, func() *http.Response) {
				reg := testTenants(t, generous("alice", "alice-key"))
				s, ts := jobsServer(t, jobsWorkload(), WithTenants(reg), WithWorkers(1), WithQueueSize(1))
				sid := selectAs(t, ts, "alice-key")
				release := occupyWorker(t, s, "blocker-running")
				t.Cleanup(func() { close(release) })
				fill := make(chan struct{})
				t.Cleanup(func() { close(fill) })
				if _, _, err := s.jm.SubmitLane("blocker-bulk", "", "", jobs.LaneBulk, 0, blockTask(fill)); err != nil {
					t.Fatal(err)
				}
				return s, func() *http.Response {
					return postAs(t, "alice-key", ts.URL+"/api/jobs", summarizeRequest{SessionID: sid, Steps: 2}, nil)
				}
			},
		},
		{
			name:  "rate limit",
			cause: rejectRateLimit,
			build: func(t *testing.T) (*Server, func() *http.Response) {
				cfg := generous("alice", "alice-key")
				cfg.RatePerSec, cfg.Burst = 0.01, 1
				reg := testTenants(t, cfg)
				s, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))
				// Drain the single burst token.
				res, err := http.NewRequest(http.MethodGet, ts.URL+"/api/movies", nil)
				if err != nil {
					t.Fatal(err)
				}
				res.Header.Set("X-Prox-Key", "alice-key")
				r, err := http.DefaultClient.Do(res)
				if err != nil {
					t.Fatal(err)
				}
				r.Body.Close()
				if r.StatusCode != http.StatusOK {
					t.Fatalf("burst request status = %d", r.StatusCode)
				}
				return s, func() *http.Response {
					return postAs(t, "alice-key", ts.URL+"/api/select", selectRequest{}, nil)
				}
			},
		},
		{
			name:  "job quota",
			cause: rejectQuotaJobs,
			build: func(t *testing.T) (*Server, func() *http.Response) {
				cfg := generous("alice", "alice-key")
				cfg.MaxConcurrentJobs = 1
				reg := testTenants(t, cfg)
				s, ts := jobsServer(t, jobsWorkload(), WithTenants(reg), WithWorkers(1), WithQueueSize(8))
				sid := selectAs(t, ts, "alice-key")
				release := occupyWorker(t, s, "blocker-running")
				t.Cleanup(func() { close(release) })
				// This submission queues and holds the tenant's single slot.
				var jr jobResponse
				if res := postAs(t, "alice-key", ts.URL+"/api/jobs", summarizeRequest{SessionID: sid, Steps: 2}, &jr); res.StatusCode != http.StatusAccepted {
					t.Fatalf("first submit status = %d, want 202", res.StatusCode)
				}
				return s, func() *http.Response {
					// Different parameters, so it cannot coalesce onto the first.
					return postAs(t, "alice-key", ts.URL+"/api/jobs", summarizeRequest{SessionID: sid, Steps: 3}, nil)
				}
			},
		},
		{
			name:  "session quota",
			cause: rejectQuotaSessions,
			build: func(t *testing.T) (*Server, func() *http.Response) {
				cfg := generous("alice", "alice-key")
				cfg.MaxSessions = 1
				reg := testTenants(t, cfg)
				s, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))
				selectAs(t, ts, "alice-key")
				return s, func() *http.Response {
					return postAs(t, "alice-key", ts.URL+"/api/select", selectRequest{}, nil)
				}
			},
		},
		{
			name:  "admission cost",
			cause: rejectCost,
			build: func(t *testing.T) (*Server, func() *http.Response) {
				reg := testTenants(t, generous("alice", "alice-key"))
				s, ts := jobsServer(t, jobsWorkload(), WithTenants(reg), WithAdmissionMaxCost(0.5))
				sid := selectAs(t, ts, "alice-key")
				return s, func() *http.Response {
					return postAs(t, "alice-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: sid, Steps: 2}, nil)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, fire := tc.build(t)
			before := map[string]float64{}
			for cause, c := range s.met.rejected {
				before[cause] = c.Value()
			}
			res := fire()
			if res.StatusCode != http.StatusTooManyRequests {
				t.Fatalf("status = %d, want 429", res.StatusCode)
			}
			secs := retryAfterOf(t, res, tc.name)
			if secs < 1 || secs > 3600 {
				t.Fatalf("Retry-After = %ds, want within [1s, 1h]", secs)
			}
			for cause, c := range s.met.rejected {
				want := before[cause]
				if cause == tc.cause {
					want++
				}
				if got := c.Value(); got != want {
					t.Fatalf("prox_http_rejected_total{cause=%q} = %v, want %v", cause, got, want)
				}
			}
		})
	}
}

// TestRejectionBodyNamesCause pins the 429 body shape: a JSON object
// with "error" and "cause" fields (clients branch on cause).
func TestRejectionBodyNamesCause(t *testing.T) {
	cfg := generous("alice", "alice-key")
	cfg.MaxSessions = 1
	reg := testTenants(t, cfg)
	_, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))
	selectAs(t, ts, "alice-key")

	var body map[string]string
	res := postAs(t, "alice-key", ts.URL+"/api/select", selectRequest{}, &body)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", res.StatusCode)
	}
	if body["cause"] != rejectQuotaSessions {
		t.Fatalf("cause = %q, want %q", body["cause"], rejectQuotaSessions)
	}
	if body["error"] == "" {
		t.Fatal("429 body without error message")
	}
}

// TestJobQuotaReleased: finishing a job returns its quota slot, so a
// tenant at MaxConcurrentJobs=1 can run jobs serially forever.
func TestJobQuotaReleased(t *testing.T) {
	cfg := generous("alice", "alice-key")
	cfg.MaxConcurrentJobs = 1
	reg := testTenants(t, cfg)
	_, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))
	sid := selectAs(t, ts, "alice-key")

	for steps := 1; steps <= 3; steps++ {
		var out summarizeResponse
		res := postAs(t, "alice-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: sid, Steps: steps}, &out)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("run %d status = %d, want 200 (quota slot not released?)", steps, res.StatusCode)
		}
	}
}

// TestPerTenantCostOverride: a tenant's MaxCostPerJob overrides the
// server-wide admission budget in both directions.
func TestPerTenantCostOverride(t *testing.T) {
	rich := generous("rich", "rich-key")
	rich.MaxCostPerJob = 1e12
	poor := generous("poor", "poor-key")
	poor.MaxCostPerJob = 0.5
	reg := testTenants(t, rich, poor)
	// Server-wide budget sheds everything; rich's override admits. The
	// cache is off: a hit on rich's identical run would (correctly) serve
	// poor for free, which is not what this test is about.
	_, ts := jobsServer(t, jobsWorkload(), WithTenants(reg), WithAdmissionMaxCost(0.5), WithCache(0, 0, 0))

	richSID := selectAs(t, ts, "rich-key")
	if res := postAs(t, "rich-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: richSID, Steps: 1}, nil); res.StatusCode != http.StatusOK {
		t.Fatalf("rich tenant status = %d, want 200 despite tiny server budget", res.StatusCode)
	}
	poorSID := selectAs(t, ts, "poor-key")
	res := postAs(t, "poor-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: poorSID, Steps: 1}, nil)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("poor tenant status = %d, want 429", res.StatusCode)
	}
}

// TestTenantMetricsExposed: the per-tenant series appear on /metrics
// with their tenant labels once traffic flows.
func TestTenantMetricsExposed(t *testing.T) {
	reg := testTenants(t, generous("alice", "alice-key"))
	_, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))
	selectAs(t, ts, "alice-key")

	res, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(res.Body); err != nil {
		t.Fatal(err)
	}
	page := buf.String()
	for _, want := range []string{
		`prox_tenant_requests_total{tenant="alice"}`,
		`prox_tenant_sessions{tenant="alice"}`,
		`prox_jobs_queue_depth{lane="interactive"}`,
		`prox_jobs_queue_depth{lane="bulk"}`,
		`prox_http_rejected_total{cause="rate-limit"}`,
	} {
		if !bytes.Contains([]byte(page), []byte(want)) {
			t.Fatalf("/metrics missing %s\n%s", want, page[:min(len(page), 2000)])
		}
	}
}

// TestRateLimitRetryAfterSane: the Retry-After of a rate-limit 429
// approximates the bucket's actual refill time.
func TestRateLimitRetryAfterSane(t *testing.T) {
	cfg := generous("alice", "alice-key")
	cfg.RatePerSec, cfg.Burst = 0.1, 1 // one token per 10s
	reg := testTenants(t, cfg)
	_, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))

	selectAs(t, ts, "alice-key") // drains the burst token
	res := postAs(t, "alice-key", ts.URL+"/api/select", selectRequest{}, nil)
	if res.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", res.StatusCode)
	}
	secs := retryAfterOf(t, res, "rate limit")
	if secs < 1 || secs > 11 {
		t.Fatalf("Retry-After = %ds, want ~10s for a 0.1/s bucket", secs)
	}
}

// TestSessionQuotaReleasedOnEviction: an evicted session returns its
// owner's quota slot, so the tenant can keep opening sessions under a
// small server-wide session cap.
func TestSessionQuotaReleasedOnEviction(t *testing.T) {
	cfg := generous("alice", "alice-key")
	cfg.MaxSessions = 2
	reg := testTenants(t, cfg)
	_, ts := jobsServer(t, jobsWorkload(), WithTenants(reg), WithMaxSessions(1))

	// Each new session evicts the idle previous one; the quota slot must
	// follow, or the third select would trip the MaxSessions=2 quota.
	for i := 0; i < 4; i++ {
		var sel selectResponse
		res := postAs(t, "alice-key", ts.URL+"/api/select", selectRequest{}, &sel)
		if res.StatusCode != http.StatusOK {
			t.Fatalf("select %d status = %d (quota slot not released on eviction?)", i, res.StatusCode)
		}
	}
}

// TestSingleTenantModeUnchanged: without a registry nothing requires a
// key and no tenant series exist — the pre-tenancy behavior.
func TestSingleTenantModeUnchanged(t *testing.T) {
	_, ts := jobsServer(t, jobsWorkload())
	sid := selectAll(t, ts)
	var out summarizeResponse
	if res := post(t, ts.URL+"/api/summarize", summarizeRequest{SessionID: sid, Steps: 1}, &out); res.StatusCode != http.StatusOK {
		t.Fatalf("summarize status = %d", res.StatusCode)
	}
}

// TestLaneMetricsMoveWithJobs: queued/running gauges carry lane labels
// that actually track job flow.
func TestLaneMetricsMoveWithJobs(t *testing.T) {
	s, ts := jobsServer(t, jobsWorkload(), WithWorkers(1), WithQueueSize(4))
	sid := selectAll(t, ts)

	release := occupyWorker(t, s, "blocker")
	var jr jobResponse
	if res := post(t, ts.URL+"/api/jobs", summarizeRequest{SessionID: sid, Steps: 2}, &jr); res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", res.StatusCode)
	}
	if got := s.met.jobsQueued["bulk"].Value(); got != 1 {
		t.Fatalf("prox_jobs_queued{lane=bulk} = %v, want 1", got)
	}
	close(release)
	deadline := time.Now().Add(10 * time.Second)
	for s.met.jobsQueued["bulk"].Value() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("bulk queued gauge never drained")
		}
		time.Sleep(2 * time.Millisecond)
	}
	pollJob(t, ts, jr.ID)
}

// TestTenantCacheBytesQuota: a tenant past its MaxCacheBytes quota
// keeps its results but publishes nothing to the shared summary cache;
// a tenant within quota publishes normally, surfaces its attributed
// bytes on the per-tenant gauge, and gets them back on a cache flush.
func TestTenantCacheBytesQuota(t *testing.T) {
	tiny := generous("tiny", "tiny-key")
	tiny.MaxCacheBytes = 1
	reg := testTenants(t, tiny, generous("rich", "rich-key"))
	s, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))

	sid := selectAs(t, ts, "tiny-key")
	var rerun summarizeResponse
	postAs(t, "tiny-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: sid, Steps: 2}, nil)
	postAs(t, "tiny-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: sid, Steps: 2}, &rerun)
	if rerun.Cached {
		t.Fatal("identical request hit the cache despite the tenant's cache-bytes quota")
	}
	if got := s.tmet["tiny"].quotaCache.Value(); got < 1 {
		t.Fatalf("quota_denied{quota=cache-bytes} = %v, want >= 1", got)
	}

	rid := selectAs(t, ts, "rich-key")
	var hit summarizeResponse
	postAs(t, "rich-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: rid, Steps: 3}, nil)
	postAs(t, "rich-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: rid, Steps: 3}, &hit)
	if !hit.Cached {
		t.Fatal("expected the within-quota tenant's identical rerun to hit the cache")
	}
	s.scrapeTenants()
	if got := s.tmet["rich"].cacheBytes.Value(); got <= 0 {
		t.Fatalf("prox_tenant_cache_bytes = %v, want > 0", got)
	}

	// A tenant-scoped flush drops exactly the caller's entries and
	// returns their bytes to its attribution.
	postAs(t, "rich-key", ts.URL+"/api/cache/flush", struct{}{}, nil)
	s.scrapeTenants()
	if got := s.tmet["rich"].cacheBytes.Value(); got != 0 {
		t.Fatalf("prox_tenant_cache_bytes after flush = %v, want 0", got)
	}
}

// getAs issues an authenticated GET and returns the status code and
// raw body.
func getAs(t *testing.T, key, url string) (int, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Prox-Key", key)
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	b, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(b)
}

// TestTenantJobIsolation: another tenant's job id answers 404 on both
// get and cancel — byte-identical (modulo the echoed id) to a missing
// job — and a foreign cancel must not detach or kill the owner's work.
func TestTenantJobIsolation(t *testing.T) {
	reg := testTenants(t, generous("alice", "alice-key"), generous("bob", "bob-key"))
	_, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))

	sid := selectAs(t, ts, "alice-key")
	var jr jobResponse
	if res := postAs(t, "alice-key", ts.URL+"/api/jobs", summarizeRequest{SessionID: sid, Steps: 2}, &jr); res.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d", res.StatusCode)
	}

	status, foreign := getAs(t, "bob-key", ts.URL+"/api/jobs/"+jr.ID)
	if status != http.StatusNotFound {
		t.Fatalf("foreign job get status = %d, want 404", status)
	}
	status, missing := getAs(t, "bob-key", ts.URL+"/api/jobs/j999")
	if status != http.StatusNotFound {
		t.Fatalf("missing job get status = %d, want 404", status)
	}
	if strings.ReplaceAll(foreign, jr.ID, "?") != strings.ReplaceAll(missing, "j999", "?") {
		t.Fatalf("foreign 404 body %q must be indistinguishable from missing 404 body %q", foreign, missing)
	}

	if res := postAs(t, "bob-key", ts.URL+"/api/jobs/"+jr.ID+"/cancel", struct{}{}, nil); res.StatusCode != http.StatusNotFound {
		t.Fatalf("foreign cancel status = %d, want 404", res.StatusCode)
	}

	// The owner still sees the job, and the foreign cancel detached
	// nothing: it runs to Done, not Canceled.
	deadline := time.Now().Add(10 * time.Second)
	for {
		status, body := getAs(t, "alice-key", ts.URL+"/api/jobs/"+jr.ID)
		if status != http.StatusOK {
			t.Fatalf("owner job get status = %d, want 200", status)
		}
		var got jobResponse
		if err := json.Unmarshal([]byte(body), &got); err != nil {
			t.Fatal(err)
		}
		if got.State == jobs.Done.String() {
			break
		}
		if got.State == jobs.Canceled.String() || got.State == jobs.Failed.String() {
			t.Fatalf("owner job state = %s after foreign cancel, want done", got.State)
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never finished, state = %s", got.State)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestTenantCacheFlushScoped: with a registry, /api/cache/flush drops
// only the calling tenant's entries — another tenant's warm entries and
// byte attribution survive.
func TestTenantCacheFlushScoped(t *testing.T) {
	reg := testTenants(t, generous("alice", "alice-key"), generous("bob", "bob-key"))
	s, ts := jobsServer(t, jobsWorkload(), WithTenants(reg))

	aid := selectAs(t, ts, "alice-key")
	bid := selectAs(t, ts, "bob-key")
	postAs(t, "alice-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: aid, Steps: 2}, nil)
	postAs(t, "bob-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: bid, Steps: 3}, nil)
	s.scrapeTenants()
	aliceBytes := s.tmet["alice"].cacheBytes.Value()
	if aliceBytes <= 0 {
		t.Fatalf("prox_tenant_cache_bytes{tenant=alice} = %v, want > 0", aliceBytes)
	}

	var out map[string]int
	postAs(t, "bob-key", ts.URL+"/api/cache/flush", struct{}{}, &out)
	if out["flushed"] != 1 {
		t.Fatalf("bob's flush removed %d entries, want exactly his own 1", out["flushed"])
	}

	// Alice's entry survived bob's flush: her identical rerun hits, and
	// her attribution is untouched while bob's is zero.
	var hit summarizeResponse
	postAs(t, "alice-key", ts.URL+"/api/summarize", summarizeRequest{SessionID: aid, Steps: 2}, &hit)
	if !hit.Cached {
		t.Fatal("alice's cache entry must survive bob's flush")
	}
	s.scrapeTenants()
	if got := s.tmet["alice"].cacheBytes.Value(); got != aliceBytes {
		t.Fatalf("prox_tenant_cache_bytes{tenant=alice} = %v after bob's flush, want %v", got, aliceBytes)
	}
	if got := s.tmet["bob"].cacheBytes.Value(); got != 0 {
		t.Fatalf("prox_tenant_cache_bytes{tenant=bob} = %v after his flush, want 0", got)
	}
}
