package distance

import (
	"math/bits"
	"sync"
	"time"

	"repro/internal/provenance"
)

// deltaProbe pairs a compiled provenance.Probe with the per-candidate
// metadata the sweep needs: the flattened original members of the merged
// group (for the φ-truth), whether the candidate touches result
// alignment, and — only then — the composed cumulative mapping.
type deltaProbe struct {
	pr *provenance.Probe
	// memberIDs are the dense arena ids of pr.Members (-1 when a member
	// does not occur in the planned expression).
	memberIDs []int32
	// memberCols and memberRaw back the blocked sweep's truth columns for
	// members whose memberIDs entry is -1: memberCols[k] holds the baseIn
	// ids whose φ-combine is member k's extended truth (the member is a
	// base group), memberRaw[k] the baseIn id of its raw truth otherwise.
	// Both are nil when every member is interned (the common case).
	memberCols [][]int32
	memberRaw  []int32
	// flatIDs are the base-interner ids of the union of the base groups
	// of the probed members: the original annotations whose φ-combined
	// truth the merged group gets.
	flatIDs []int32
	// noSkip blocks the truth-delta short-circuit: the candidate renames
	// a vector coordinate or an aligned original coordinate, so its
	// result differs from the base even when no truth changes.
	noSkip bool
	// alignTouched marks candidates whose merge renames original result
	// coordinates; they align with composed instead of reusing the base
	// alignment. needsAlign caches needsAlign(orig, composed), which
	// depends only on the original result's keys.
	alignTouched bool
	needsAlign   bool
	composed     provenance.Mapping
}

// deltaTruths holds the step's extended valuation v^{h,φ} in dense form:
// one int8 truth per interned annotation id plus the matching bitset the
// arena evaluator reads. The base-group members (original annotations)
// AND the plan's raw annotations intern into one shared table (rawID maps
// raw plan ids into it), so per-valuation reset pulls each raw truth
// exactly once — a raw annotation that is also some group's member is not
// read twice — and every per-candidate φ-combine is pure array indexing,
// no string hashing on the hot path. names, members, rawID, and baseIn
// are shared read-only across workers (built once per DistanceDelta
// call); the per-valuation state (baseTruth, ext, bits, extra) is per
// worker.
type deltaTruths struct {
	names   []provenance.Annotation // interned annotations in id order
	members [][]int32               // per id: baseIn ids of its base-group members, nil → raw truth
	rawID   []int32                 // per id: baseIn id of its raw truth (-1 when grouped)
	baseIn  *provenance.Interner    // interned base members and raw plan annotations
	groups  provenance.Groups
	phi     provenance.Combiner

	v         provenance.Valuation
	baseTruth []bool // per baseIn id: raw truth under v
	ext       []int8 // per plan-ann id: 0/1 truth under v^{h,φ}
	bits      provenance.Bitset
	scratch   []bool
	extra     map[provenance.Annotation]int8 // memo for non-interned annotations
}

func newDeltaTruths(plan *provenance.Plan, base provenance.Groups, phi provenance.Combiner) *deltaTruths {
	names := plan.Annotations()
	baseIn := provenance.NewInternerSize(len(names))
	members := make([][]int32, len(names))
	rawID := make([]int32, len(names))
	for id, ann := range names {
		rawID[id] = -1
		if ms, ok := base[ann]; ok && len(ms) > 0 {
			ids := make([]int32, len(ms))
			for i, m := range ms {
				ids[i] = baseIn.Intern(m)
			}
			members[id] = ids
		} else {
			rawID[id] = baseIn.Intern(ann)
		}
	}
	return &deltaTruths{names: names, members: members, rawID: rawID, baseIn: baseIn, groups: base, phi: phi}
}

// internFlat interns the flattened member list of one probe.
func (d *deltaTruths) internFlat(flat []provenance.Annotation) []int32 {
	ids := make([]int32, len(flat))
	for i, m := range flat {
		ids[i] = d.baseIn.Intern(m)
	}
	return ids
}

// forkTruths returns a worker-private view of shared: the read-only
// name/member tables are aliased, the valuation state comes from the
// estimator's fork pool, so steady-state sweeps allocate no per-worker
// slabs. Return it with putTruths.
func (e *Estimator) forkTruths(shared *deltaTruths) *deltaTruths {
	d, ok := e.forkPool.Get().(*deltaTruths)
	if !ok {
		d = &deltaTruths{}
	}
	d.names, d.members, d.rawID = shared.names, shared.members, shared.rawID
	d.baseIn, d.groups, d.phi = shared.baseIn, shared.groups, shared.phi
	d.baseTruth = fitBools(d.baseTruth, shared.baseIn.Len())
	d.ext = fitInt8s(d.ext, len(shared.names))
	if words := (len(shared.names) + 63) / 64; cap(d.bits) < words {
		d.bits = provenance.NewBitset(len(shared.names))
	} else {
		d.bits = d.bits[:words]
	}
	return d
}

// putTruths recycles a forked truth table, dropping its valuation
// reference so pooled slabs never pin a valuation alive.
func (e *Estimator) putTruths(d *deltaTruths) {
	d.v = nil
	e.forkPool.Put(d)
}

func (d *deltaTruths) reset(v provenance.Valuation) {
	d.v = v
	if len(d.extra) > 0 {
		clear(d.extra)
	}
	for i, a := range d.baseIn.Annotations() {
		d.baseTruth[i] = v.Truth(a)
	}
	for id := range d.names {
		var t int8
		if ids := d.members[id]; ids != nil {
			t = int8(d.combineIDs(ids))
		} else if d.baseTruth[d.rawID[id]] {
			t = 1
		}
		d.ext[id] = t
	}
	d.bits.FillWords(d.ext)
}

// combineIDs φ-combines the precomputed raw truths of interned base
// members.
func (d *deltaTruths) combineIDs(ids []int32) int {
	if cap(d.scratch) < len(ids) {
		d.scratch = make([]bool, len(ids))
	}
	truths := d.scratch[:len(ids)]
	for i, id := range ids {
		truths[i] = d.baseTruth[id]
	}
	if d.phi.Combine(truths) {
		return 1
	}
	return 0
}

// combine φ-combines raw truths of arbitrary annotations (the slow
// fallback for non-interned members).
func (d *deltaTruths) combine(members []provenance.Annotation) int {
	if cap(d.scratch) < len(members) {
		d.scratch = make([]bool, len(members))
	}
	truths := d.scratch[:len(members)]
	for i, m := range members {
		truths[i] = d.v.Truth(m)
	}
	if d.phi.Combine(truths) {
		return 1
	}
	return 0
}

// truthOf returns the extended truth of m, whose dense id is id (-1 when
// m is not interned; the rare fallback memoizes in extra).
func (d *deltaTruths) truthOf(m provenance.Annotation, id int32) int {
	if id >= 0 {
		return int(d.ext[id])
	}
	if t, ok := d.extra[m]; ok {
		return int(t)
	}
	var t int
	if members, ok := d.groups[m]; ok && len(members) > 0 {
		t = d.combine(members)
	} else if d.v.Truth(m) {
		t = 1
	}
	if d.extra == nil {
		d.extra = make(map[provenance.Annotation]int8)
	}
	d.extra[m] = int8(t)
	return t
}

// DistanceDelta scores a cohort of candidate merges over the shared
// current expression cur without materializing the candidates: every
// member set of cohort is probed as a merge into newAnn on cur's
// compiled plan. base must be the step's inverse view
// (GroupsOf(origAnns, cum)), and cum the mapping with cur = cum(p0).
//
// The default sweep is valuation-blocked: up to 64 valuations evaluate
// per arena pass (provenance.Arena.EvalBlock), member-vs-merged truth
// deltas compare as single word operations, and workers partition the
// valuation blocks. On top of the blocking, the sweep keeps the delta
// savings: (1) candidates evaluate through the homomorphism identity
// Eval(h(p), v') = Eval(p, v'∘h) on the shared plan instead of a
// per-candidate Apply + Eval; (2) a candidate whose merged φ-truth equals
// every member's pre-merge truth reuses the base evaluation's VAL-FUNC
// value outright (counted in Stats.DeltaSkips); (3) when truths do
// change, only the dirty subtrees re-evaluate, lanes in bulk
// (Stats.DeltaSubtreeEvals). ScalarEval — or a non-blockable arena —
// falls back to the per-valuation scalar sweep; the two are
// bit-identical.
//
// It returns the per-candidate distances and candidate sizes, computed
// incrementally (equal to Apply(...).Size()). ok is false — and the
// caller must fall back to DistanceBatch — when cur cannot be planned
// (e.g. it is not an aggregated expression) or a probe cannot be
// compiled soundly (newAnn occurs in cur, reserved annotations).
//
// Distances are bit-identical to DistanceBatch and, in enumeration mode,
// to per-candidate Distance calls; per-candidate sums accumulate in
// valuation order at any Parallelism, and sampling mode draws one shared
// sample set up front (common random numbers), exactly like
// DistanceBatch.
func (e *Estimator) DistanceDelta(p0, cur provenance.Expression, cum provenance.Mapping, base provenance.Groups, cohort [][]provenance.Annotation, newAnn provenance.Annotation) (dists []float64, sizes []int, ok bool) {
	plan := e.planOf(cur)
	if plan == nil {
		return nil, nil, false
	}
	blocked := !e.ScalarEval && plan.Arena().Blockable()
	truths := newDeltaTruths(plan, base, e.Phi)
	probes := make([]*deltaProbe, len(cohort))
	for i, ms := range cohort {
		pr := plan.Probe(ms, newAnn)
		if pr == nil {
			return nil, nil, false
		}
		var flat []provenance.Annotation
		for _, m := range ms {
			flat = append(flat, base.Members(m)...)
		}
		ids := make([]int32, len(pr.Members))
		for k, m := range pr.Members {
			id, ok := plan.AnnID(m)
			if !ok {
				id = -1
			}
			ids[k] = id
		}
		dp := &deltaProbe{pr: pr, memberIDs: ids, flatIDs: truths.internFlat(flat)}
		if blocked {
			// Truth columns for uninterned members, mirroring truthOf's
			// fallback. Built only for the blocked sweep so the scalar
			// path's raw-truth reads stay untouched.
			for k, m := range pr.Members {
				if ids[k] >= 0 {
					continue
				}
				if dp.memberCols == nil {
					dp.memberCols = make([][]int32, len(ids))
					dp.memberRaw = make([]int32, len(ids))
					for r := range dp.memberRaw {
						dp.memberRaw[r] = -1
					}
				}
				if bm, grouped := base[m]; grouped && len(bm) > 0 {
					dp.memberCols[k] = truths.internFlat(bm)
				} else {
					dp.memberRaw[k] = truths.baseIn.Intern(m)
				}
			}
		}
		probes[i] = dp
	}

	t0 := time.Now()
	defer func() {
		e.stats.deltaCalls.Add(1)
		e.stats.deltaCandidates.Add(uint64(len(cohort)))
		e.stats.deltaNanos.Add(int64(time.Since(t0)))
	}()

	out := make([]float64, len(cohort))
	sizes = make([]int, len(cohort))
	for i, dp := range probes {
		sizes[i] = dp.pr.Size
	}
	if len(cohort) == 0 {
		return out, sizes, true
	}
	vals := e.batchValuations()
	if len(vals) == 0 {
		return out, sizes, true
	}
	// Fill the original-expression cache before fanning out so workers
	// only read it.
	for _, v := range vals {
		e.evalOriginal(v, p0)
	}

	// Alignment metadata. For an aggregated original the result keys are
	// the same under every valuation, so one evaluation determines which
	// candidates rename aligned coordinates and whether they need an
	// AlignResult at all; non-vector results align unconditionally, like
	// needsAlign.
	origVec, origIsVec := e.evalOriginal(vals[0], p0).(provenance.Vector)
	baseNeedsAlign := needsAlign(e.evalOriginal(vals[0], p0), cum)
	var renamedKeys map[provenance.Annotation]struct{}
	if origIsVec {
		renamedKeys = make(map[provenance.Annotation]struct{}, len(origVec))
		for k := range origVec {
			if k != "" {
				renamedKeys[cum.Rename(k)] = struct{}{}
			}
		}
	}
	for _, dp := range probes {
		touched := !origIsVec
		if origIsVec {
			for _, m := range dp.pr.Members {
				if _, hit := renamedKeys[m]; hit {
					touched = true
					break
				}
			}
		}
		dp.alignTouched = touched
		dp.noSkip = dp.pr.RenamesGroup || (origIsVec && touched)
		if touched {
			step := provenance.MergeMapping(newAnn, dp.pr.Members...)
			dp.composed = cum.Compose(step)
			dp.needsAlign = needsAlign(e.evalOriginal(vals[0], p0), dp.composed)
		}
	}

	if blocked {
		e.deltaBlocked(p0, cur, cum, truths, plan, probes, vals, baseNeedsAlign, out)
	} else {
		workers := e.Parallelism
		if workers > len(cohort) {
			workers = len(cohort)
		}
		if workers <= 1 {
			e.deltaSweep(p0, cur, cum, truths, plan, probes, vals, baseNeedsAlign, out, 0, len(cohort))
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				lo := w * len(cohort) / workers
				hi := (w + 1) * len(cohort) / workers
				wg.Add(1)
				go func(lo, hi int) {
					defer wg.Done()
					e.deltaSweep(p0, cur, cum, truths, plan, probes, vals, baseNeedsAlign, out, lo, hi)
				}(lo, hi)
			}
			wg.Wait()
		}
	}

	n := float64(len(vals))
	for i, total := range out {
		d := total / n
		if e.MaxError > 0 {
			d /= e.MaxError
			if d > 1 {
				d = 1
			}
		}
		out[i] = d
	}
	return out, sizes, true
}

// deltaSweep scores probes[lo:hi] against every valuation: the scalar
// fallback of the blocked sweep (ScalarEval, non-blockable arenas). Each
// call takes a pooled truth fork and arena scratch, so concurrent sweeps
// over disjoint ranges share only the read-only plan, probes, truth name
// tables, and prewarmed original cache, plus the atomic counters.
func (e *Estimator) deltaSweep(p0, cur provenance.Expression, cum provenance.Mapping, shared *deltaTruths, plan *provenance.Plan, probes []*deltaProbe, vals []provenance.Valuation, baseNeedsAlign bool, out []float64, lo, hi int) {
	truths := e.forkTruths(shared)
	scratch := plan.Arena().GetScratch()
	var skips, fulls uint64
	for _, v := range vals {
		truths.reset(v)
		orig := e.evalOriginal(v, p0) // cache hit after the prewarm above
		baseVec := plan.BaseEval(truths.bits, scratch)
		baseAligned := orig
		if baseNeedsAlign {
			baseAligned = cur.AlignResult(orig, cum)
		}
		baseVF := 0.0
		baseVFReady := false
		for ci := lo; ci < hi; ci++ {
			dp := probes[ci]
			mergedN := truths.combineIDs(dp.flatIDs)
			changed := false
			for k, m := range dp.pr.Members {
				if truths.truthOf(m, dp.memberIDs[k]) != mergedN {
					changed = true
					break
				}
			}
			if !changed && !dp.noSkip {
				if !baseVFReady {
					baseVF = e.VF.F(v, baseAligned, baseVec)
					baseVFReady = true
				}
				out[ci] += baseVF
				skips++
				continue
			}
			summ := dp.pr.CandEval(mergedN, baseVec, scratch)
			aligned := baseAligned
			if dp.alignTouched {
				if dp.needsAlign {
					aligned = cur.AlignResult(orig, dp.composed)
				} else {
					aligned = orig
				}
			}
			out[ci] += e.VF.F(v, aligned, summ)
			fulls++
			e.stats.evaluations.Add(1)
		}
	}
	e.stats.deltaSkips.Add(skips)
	e.stats.deltaFullEvals.Add(fulls)
	e.stats.deltaSubtreeEvals.Add(scratch.SubtreeEvals)
	plan.Arena().PutScratch(scratch)
	e.putTruths(truths)
}

// deltaBlockState is the worker-private state of one blocked delta
// sweep: the packed raw-truth columns of the current block, the truth
// block handed to the arena, and the per-lane evaluation vectors and
// VAL-FUNC caches. It is pooled on the estimator.
type deltaBlockState struct {
	baseTruthW []uint64 // per baseIn id: packed raw truths of the block
	tb         *provenance.TruthBlock
	base       []provenance.Vector // per lane: base evaluation
	cand       []provenance.Vector // per lane: candidate evaluation
	aligned    []provenance.Result // per lane: base-aligned original
	origs      []provenance.Result // per lane: original evaluation
	baseVF     []float64           // per lane: cached base VAL-FUNC value
	wscratch   []uint64
	bscratch   []bool
}

func (e *Estimator) getBlockState() *deltaBlockState {
	st, ok := e.blockStatePool.Get().(*deltaBlockState)
	if !ok {
		st = &deltaBlockState{
			tb:      provenance.NewTruthBlock(),
			base:    make([]provenance.Vector, 64),
			cand:    make([]provenance.Vector, 64),
			aligned: make([]provenance.Result, 64),
			origs:   make([]provenance.Result, 64),
			baseVF:  make([]float64, 64),
		}
	}
	return st
}

// putBlockState recycles a block state. The lane vectors stay (their
// reuse is the point of the pool); result references are dropped so the
// pool never pins evaluation results alive.
func (e *Estimator) putBlockState(st *deltaBlockState) {
	for i := range st.aligned {
		st.aligned[i] = nil
		st.origs[i] = nil
	}
	e.blockStatePool.Put(st)
}

// combineW φ-combines packed raw-truth columns lane-wise: the word-level
// counterpart of deltaTruths.combineIDs. Combiners implementing
// provenance.WordCombiner (φ = OR, AND) combine whole words; others fall
// back to a per-lane bool column, bit-identical by the WordCombiner
// contract.
func (st *deltaBlockState) combineW(ids []int32, phi provenance.Combiner, mask uint64, lanes int) uint64 {
	if wc, ok := phi.(provenance.WordCombiner); ok {
		ws := st.wscratch[:0]
		for _, id := range ids {
			ws = append(ws, st.baseTruthW[id])
		}
		st.wscratch = ws
		return wc.CombineWords(ws, mask)
	}
	if cap(st.bscratch) < len(ids) {
		st.bscratch = make([]bool, len(ids))
	}
	truths := st.bscratch[:len(ids)]
	var w uint64
	for j := 0; j < lanes; j++ {
		for i, id := range ids {
			truths[i] = st.baseTruthW[id]&(1<<uint(j)) != 0
		}
		if phi.Combine(truths) {
			w |= 1 << uint(j)
		}
	}
	return w
}

// deltaBlocked runs the valuation-blocked sweep: workers partition the
// 64-lane valuation blocks (not the candidates), each writing disjoint
// lane columns of a candidate × valuation summand matrix. The final
// per-candidate sum is a sequential left-fold over that matrix in
// valuation order, so results are bit-identical to the scalar sweep at
// any worker count. Candidates are chunked when the matrix would
// otherwise outgrow a fixed cell budget.
func (e *Estimator) deltaBlocked(p0, cur provenance.Expression, cum provenance.Mapping, shared *deltaTruths, plan *provenance.Plan, probes []*deltaProbe, vals []provenance.Valuation, baseNeedsAlign bool, out []float64) {
	V := len(vals)
	nBlocks := (V + 63) / 64
	workers := e.Parallelism
	if workers > nBlocks {
		workers = nBlocks
	}
	const maxCells = 4 << 20
	chunk := len(probes)
	if chunk*V > maxCells {
		chunk = maxCells / V
		if chunk < 1 {
			chunk = 1
		}
	}
	// Prewarm the packed truth column of every raw annotation before
	// fanning out, so sweep workers only read the memo.
	baseAnns := shared.baseIn.Annotations()
	cols := make([][]uint64, len(baseAnns))
	for i, a := range baseAnns {
		cols[i] = e.truthColumn(a, vals)
	}
	vf := make([]float64, chunk*V)
	for cLo := 0; cLo < len(probes); cLo += chunk {
		cHi := min(len(probes), cLo+chunk)
		if workers <= 1 {
			e.deltaBlockSweep(p0, cur, cum, shared, plan, probes, vals, cols, baseNeedsAlign, vf, cLo, cHi, 0, nBlocks)
		} else {
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				bLo := w * nBlocks / workers
				bHi := (w + 1) * nBlocks / workers
				wg.Add(1)
				go func(bLo, bHi int) {
					defer wg.Done()
					e.deltaBlockSweep(p0, cur, cum, shared, plan, probes, vals, cols, baseNeedsAlign, vf, cLo, cHi, bLo, bHi)
				}(bLo, bHi)
			}
			wg.Wait()
		}
		for ci := cLo; ci < cHi; ci++ {
			row := vf[(ci-cLo)*V : (ci-cLo+1)*V]
			total := 0.0
			for _, x := range row {
				total += x
			}
			out[ci] = total
		}
	}
}

// deltaBlockSweep scores probes[cLo:cHi] against valuation blocks
// [bLo, bHi), writing each (candidate, valuation) VAL-FUNC summand into
// its vf matrix cell. Per block it loads the prewarmed raw truth words
// (cols[i][b] is annotation i's packed column word for block b),
// φ-combines extended truth columns word-wise, evaluates the base
// through Arena.EvalBlock, and per candidate compares member columns
// against the merged column with XORs: the changed-lane word drives
// both the skip accounting and the one CandEvalBlock call that
// re-evaluates all changed lanes of the dirty subtree together.
func (e *Estimator) deltaBlockSweep(p0, cur provenance.Expression, cum provenance.Mapping, shared *deltaTruths, plan *provenance.Plan, probes []*deltaProbe, vals []provenance.Valuation, cols [][]uint64, baseNeedsAlign bool, vf []float64, cLo, cHi, bLo, bHi int) {
	ar := plan.Arena()
	st := e.getBlockState()
	bs := ar.GetBlockScratch()
	names := shared.names
	V := len(vals)
	var skips, fulls uint64
	for b := bLo; b < bHi; b++ {
		lo := b * 64
		block := vals[lo:min(V, lo+64)]
		lanes := len(block)
		mask := ^uint64(0) >> uint(64-lanes)
		st.baseTruthW = fitUint64s(st.baseTruthW, len(cols))
		for i, col := range cols {
			st.baseTruthW[i] = col[b]
		}
		st.tb.Reset(len(names), lanes)
		for id := range names {
			var w uint64
			if ids := shared.members[id]; ids != nil {
				w = st.combineW(ids, shared.phi, mask, lanes)
			} else {
				w = st.baseTruthW[shared.rawID[id]]
			}
			st.tb.SetWord(int32(id), w)
		}
		ar.EvalBlock(st.tb, bs, st.base[:lanes])
		for j, v := range block {
			orig := e.evalOriginal(v, p0) // cache hit after the prewarm
			st.origs[j] = orig
			if baseNeedsAlign {
				st.aligned[j] = cur.AlignResult(orig, cum)
			} else {
				st.aligned[j] = orig
			}
		}
		var baseVFW uint64 // lanes whose base VAL-FUNC value is cached
		for ci := cLo; ci < cHi; ci++ {
			dp := probes[ci]
			mergedW := st.combineW(dp.flatIDs, shared.phi, mask, lanes)
			var changedW uint64
			if dp.noSkip {
				changedW = mask
			} else {
				for k := range dp.memberIDs {
					var mw uint64
					if id := dp.memberIDs[k]; id >= 0 {
						mw = st.tb.Word(id)
					} else if cols := dp.memberCols[k]; cols != nil {
						mw = st.combineW(cols, shared.phi, mask, lanes)
					} else {
						mw = st.baseTruthW[dp.memberRaw[k]]
					}
					changedW |= mw ^ mergedW
				}
				changedW &= mask
			}
			row := vf[(ci-cLo)*V+lo:]
			if skipW := mask &^ changedW; skipW != 0 {
				for w := skipW &^ baseVFW; w != 0; w &= w - 1 {
					j := bits.TrailingZeros64(w)
					st.baseVF[j] = e.VF.F(block[j], st.aligned[j], st.base[j])
				}
				baseVFW |= skipW
				for w := skipW; w != 0; w &= w - 1 {
					j := bits.TrailingZeros64(w)
					row[j] = st.baseVF[j]
				}
				skips += uint64(bits.OnesCount64(skipW))
			}
			if changedW != 0 {
				dp.pr.CandEvalBlock(mergedW, changedW, st.base[:lanes], bs, st.cand[:lanes])
				for w := changedW; w != 0; w &= w - 1 {
					j := bits.TrailingZeros64(w)
					aligned := st.aligned[j]
					if dp.alignTouched {
						if dp.needsAlign {
							aligned = cur.AlignResult(st.origs[j], dp.composed)
						} else {
							aligned = st.origs[j]
						}
					}
					row[j] = e.VF.F(block[j], aligned, st.cand[j])
				}
				fulls += uint64(bits.OnesCount64(changedW))
			}
		}
	}
	e.stats.deltaSkips.Add(skips)
	e.stats.deltaFullEvals.Add(fulls)
	e.stats.evaluations.Add(fulls)
	e.stats.deltaSubtreeEvals.Add(bs.SubtreeEvals)
	ar.PutBlockScratch(bs)
	e.putBlockState(st)
}

// fitBools, fitInt8s, and fitUint64s grow (or re-slice) pooled slabs to
// exactly n entries without reallocating on shrink.
func fitBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func fitInt8s(s []int8, n int) []int8 {
	if cap(s) < n {
		return make([]int8, n)
	}
	return s[:n]
}

func fitUint64s(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}
