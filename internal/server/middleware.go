package server

import (
	"context"
	"net/http"
	"time"

	"repro/internal/obs"
)

// metrics holds the server's metric handles, registered once at startup
// so the request path never touches the registry lock.
type metrics struct {
	inFlight   *obs.Gauge
	sessions   *obs.Gauge
	evictions  *obs.Counter
	summarizes *obs.Histogram
	steps      *obs.Counter

	// job engine instrumentation, by priority lane.
	jobsQueued   map[string]*obs.Gauge // by lane
	jobsRunning  map[string]*obs.Gauge // by lane
	queueDepth   map[string]*obs.Gauge // by lane, sampled at scrape
	jobDur       *obs.Histogram
	jobsFinished map[string]*obs.Counter // by terminal state
	checkpoints  *obs.Counter

	// traffic-hardening instrumentation: 429 causes and admission
	// control (see rejectError; per-tenant series live in tenantMetrics).
	rejected map[string]*obs.Counter // by rejection cause
	authFail *obs.Counter

	// summary-cache instrumentation.
	cacheHits      *obs.Counter
	cacheMisses    *obs.Counter
	cacheWarmHits  *obs.Counter
	cacheEvictions *obs.Counter
	cacheRejected  *obs.Counter
	cacheCoalesced *obs.Counter
	cacheBytes     *obs.Gauge
	cacheEntries   *obs.Gauge

	// streaming ingest and versioning instrumentation.
	streamIngests    *obs.Counter
	streamTensors    *obs.Counter
	streamPatches    *obs.Counter
	streamRecompiles *obs.Counter
	streamExtends    *obs.Counter
	versions         *obs.Counter

	// estimator instrumentation, accumulated from per-request estimators
	// after each summarization (see recordSummarize).
	estEvals      *obs.Counter
	estHits       *obs.Counter
	estMisses     *obs.Counter
	estResets     *obs.Counter
	estSamples    *obs.Counter
	estDistCalls  *obs.Counter
	estDistSecs   *obs.Counter
	estBatchCalls *obs.Counter
	estBatchCands *obs.Counter
	estBatchSecs  *obs.Counter

	estDeltaCalls   *obs.Counter
	estDeltaCands   *obs.Counter
	estDeltaSecs    *obs.Counter
	estDeltaSkips   *obs.Counter
	estDeltaSubtree *obs.Counter
	estDeltaFull    *obs.Counter

	estMergePatches    *obs.Counter
	estMergeRecompiles *obs.Counter
}

func newMetrics(reg *obs.Registry) *metrics {
	return &metrics{
		inFlight:   reg.Gauge("prox_http_in_flight_requests", "HTTP requests currently being served.", nil),
		sessions:   reg.Gauge("prox_sessions", "Selection sessions held in memory.", nil),
		evictions:  reg.Counter("prox_sessions_evicted_total", "Sessions evicted by the oldest-first cap.", nil),
		summarizes: reg.Histogram("prox_summarize_duration_seconds", "Wall time of full summarization runs.", nil, nil),
		steps:      reg.Counter("prox_summarize_steps_total", "Merge steps committed by Algorithm 1.", nil),

		jobsQueued: map[string]*obs.Gauge{
			"interactive": reg.Gauge("prox_jobs_queued", "Summarization jobs waiting in the queue.", obs.Labels{"lane": "interactive"}),
			"bulk":        reg.Gauge("prox_jobs_queued", "Summarization jobs waiting in the queue.", obs.Labels{"lane": "bulk"}),
		},
		jobsRunning: map[string]*obs.Gauge{
			"interactive": reg.Gauge("prox_jobs_running", "Summarization jobs currently running on workers.", obs.Labels{"lane": "interactive"}),
			"bulk":        reg.Gauge("prox_jobs_running", "Summarization jobs currently running on workers.", obs.Labels{"lane": "bulk"}),
		},
		queueDepth: map[string]*obs.Gauge{
			"interactive": reg.Gauge("prox_jobs_queue_depth", "Jobs sitting in the manager's queue channels, sampled at scrape time.", obs.Labels{"lane": "interactive"}),
			"bulk":        reg.Gauge("prox_jobs_queue_depth", "Jobs sitting in the manager's queue channels, sampled at scrape time.", obs.Labels{"lane": "bulk"}),
		},
		jobDur: reg.Histogram("prox_job_duration_seconds", "Submit-to-terminal latency of summarization jobs.", nil, nil),

		rejected: map[string]*obs.Counter{
			rejectQueueFull:     reg.Counter("prox_http_rejected_total", "Requests rejected with 429, by cause.", obs.Labels{"cause": rejectQueueFull}),
			rejectRateLimit:     reg.Counter("prox_http_rejected_total", "Requests rejected with 429, by cause.", obs.Labels{"cause": rejectRateLimit}),
			rejectQuotaJobs:     reg.Counter("prox_http_rejected_total", "Requests rejected with 429, by cause.", obs.Labels{"cause": rejectQuotaJobs}),
			rejectQuotaSessions: reg.Counter("prox_http_rejected_total", "Requests rejected with 429, by cause.", obs.Labels{"cause": rejectQuotaSessions}),
			rejectCost:          reg.Counter("prox_http_rejected_total", "Requests rejected with 429, by cause.", obs.Labels{"cause": rejectCost}),
		},
		authFail: reg.Counter("prox_auth_failures_total", "Requests refused for a missing or unknown API key.", nil),
		jobsFinished: map[string]*obs.Counter{
			"done":     reg.Counter("prox_jobs_finished_total", "Jobs reaching a terminal state.", obs.Labels{"state": "done"}),
			"failed":   reg.Counter("prox_jobs_finished_total", "Jobs reaching a terminal state.", obs.Labels{"state": "failed"}),
			"canceled": reg.Counter("prox_jobs_finished_total", "Jobs reaching a terminal state.", obs.Labels{"state": "canceled"}),
		},
		checkpoints: reg.Counter("prox_checkpoints_total", "Job checkpoints journaled to the store.", nil),

		cacheHits:      reg.Counter("prox_cache_hits_total", "Summarize requests served from the summary cache.", nil),
		cacheMisses:    reg.Counter("prox_cache_misses_total", "Summarize requests that missed the summary cache.", nil),
		cacheWarmHits:  reg.Counter("prox_cache_warm_hits_total", "Exact-miss summarize requests warm-started from a prior version found in the cache's prefix index.", nil),
		cacheEvictions: reg.Counter("prox_cache_evictions_total", "Summary-cache entries displaced by the LRU/TTL bounds.", nil),
		cacheRejected:  reg.Counter("prox_cache_rejected_total", "Summary-cache puts rejected (oversized entry or marshal failure).", nil),
		cacheCoalesced: reg.Counter("prox_cache_inflight_coalesced_total", "Submissions coalesced onto an in-flight identical job.", nil),
		cacheBytes:     reg.Gauge("prox_cache_bytes", "Bytes held by the summary cache.", nil),
		cacheEntries:   reg.Gauge("prox_cache_entries", "Entries held by the summary cache.", nil),

		streamIngests:    reg.Counter("prox_stream_ingests_total", "Ingest batches appended to streaming sessions.", nil),
		streamTensors:    reg.Counter("prox_stream_ingest_tensors_total", "Tensors appended by ingest batches.", nil),
		streamPatches:    reg.Counter("prox_stream_plan_patches_total", "Ingest batches folded into the compiled evaluation plan in place (Plan.ApplyAppend).", nil),
		streamRecompiles: reg.Counter("prox_stream_plan_recompiles_total", "Ingest batches that forced a full evaluation-plan recompile.", nil),
		streamExtends:    reg.Counter("prox_stream_extends_total", "Warm-started Extend jobs submitted (explicit /api/extend or cache warm-starts).", nil),
		versions:         reg.Counter("prox_summary_versions_total", "Summary versions appended to session chains.", nil),

		estEvals:      reg.Counter("prox_estimator_evaluations_total", "VAL-FUNC summands evaluated by the distance estimator.", nil),
		estHits:       reg.Counter("prox_estimator_cache_hits_total", "Original-expression evaluation cache hits.", nil),
		estMisses:     reg.Counter("prox_estimator_cache_misses_total", "Original-expression evaluation cache misses.", nil),
		estResets:     reg.Counter("prox_estimator_cache_resets_total", "Original-expression evaluation cache resets.", nil),
		estSamples:    reg.Counter("prox_estimator_samples_total", "Monte-Carlo valuation draws.", nil),
		estDistCalls:  reg.Counter("prox_estimator_distance_calls_total", "Estimator Distance invocations.", nil),
		estDistSecs:   reg.Counter("prox_estimator_distance_seconds_total", "Total wall time inside estimator Distance calls.", nil),
		estBatchCalls: reg.Counter("prox_estimator_batch_calls_total", "Estimator DistanceBatch invocations (valuation-major sweeps).", nil),
		estBatchCands: reg.Counter("prox_estimator_batch_candidates_total", "Candidates scored by DistanceBatch sweeps.", nil),
		estBatchSecs:  reg.Counter("prox_estimator_batch_seconds_total", "Total wall time inside DistanceBatch sweeps.", nil),

		estDeltaCalls:   reg.Counter("prox_estimator_delta_calls_total", "Estimator DistanceDelta invocations (incremental cohort sweeps).", nil),
		estDeltaCands:   reg.Counter("prox_estimator_delta_candidates_total", "Candidates scored by DistanceDelta sweeps.", nil),
		estDeltaSecs:    reg.Counter("prox_estimator_delta_seconds_total", "Total wall time inside DistanceDelta sweeps.", nil),
		estDeltaSkips:   reg.Counter("prox_estimator_delta_skips_total", "Candidate-valuation pairs short-circuited by the truth-delta check (base VAL-FUNC value reused).", nil),
		estDeltaSubtree: reg.Counter("prox_estimator_delta_subtree_evals_total", "Expression nodes recomputed by dirty-subtree candidate evaluations.", nil),
		estDeltaFull:    reg.Counter("prox_estimator_delta_full_evals_total", "Candidate-valuation pairs that needed a candidate evaluation (not short-circuited).", nil),

		estMergePatches:    reg.Counter("prox_estimator_merge_patches_total", "Committed merges whose cached evaluation plan was patched in place (Plan.ApplyMerge).", nil),
		estMergeRecompiles: reg.Counter("prox_estimator_merge_recompiles_total", "Committed merges that forced a plan recompile on the next step (patch refused or disabled).", nil),
	}
}

// statusRecorder captures the response status code for labeling.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// statusClass folds a status code into its Prometheus-friendly class
// label ("2xx", "4xx", ...), keeping series cardinality bounded.
func statusClass(code int) string {
	switch {
	case code >= 500:
		return "5xx"
	case code >= 400:
		return "4xx"
	case code >= 300:
		return "3xx"
	case code >= 200:
		return "2xx"
	}
	return "1xx"
}

// instrument wraps a handler with the observability middleware: per-route
// request counting by status class, a per-route latency histogram, the
// in-flight gauge, distributed tracing, the optional per-route latency
// SLO, and a debug-level request log line. The route label is the
// registered pattern, not the raw URL, so cardinality stays fixed; all
// series are pre-registered here so the request path never takes the
// registry lock.
//
// Tracing: an incoming W3C `traceparent` header joins the caller's
// trace; otherwise a fresh trace is rooted. The request span wraps the
// handler, the trace ID is echoed in `X-Prox-Trace`, attached to the
// latency histogram as an exemplar, and stamped on the request-scoped
// logger carried in the context (see Server.logFor).
func (s *Server) instrument(route string, h http.HandlerFunc) http.HandlerFunc {
	hist := s.reg.Histogram("prox_http_request_duration_seconds",
		"HTTP request latency by route.", nil, obs.Labels{"route": route})
	byClass := map[string]*obs.Counter{}
	for _, class := range []string{"1xx", "2xx", "3xx", "4xx", "5xx"} {
		byClass[class] = s.reg.Counter("prox_http_requests_total",
			"HTTP requests by route and status class.",
			obs.Labels{"route": route, "code": class})
	}
	slo := s.sloForRoute(route)
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.inFlight.Inc()
		defer s.met.inFlight.Dec()
		ctx := r.Context()
		if sc, err := obs.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
			ctx = obs.ContextWithSpanContext(ctx, sc)
		}
		ctx, span := s.tracer.StartSpan(ctx, "http "+route,
			obs.KV("route", route), obs.KV("method", r.Method))
		log := s.log
		traceID := ""
		if span != nil {
			traceID = span.TraceID().String()
			w.Header().Set("X-Prox-Trace", traceID)
			log = log.With("trace", traceID, "span", span.Context().SpanID.String())
			ctx = context.WithValue(ctx, reqLogKey{}, log)
		}
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		h(rec, r.WithContext(ctx))
		elapsed := time.Since(start)
		span.SetAttr("status", rec.status)
		span.End()
		byClass[statusClass(rec.status)].Inc()
		if traceID != "" {
			hist.ObserveExemplar(elapsed.Seconds(), traceID)
		} else {
			hist.Observe(elapsed.Seconds())
		}
		slo.Observe(elapsed, rec.status >= 500)
		log.Debug("request",
			"route", route, "method", r.Method, "status", rec.status, "dur", elapsed)
	}
}
