package distance

import (
	"math/rand"
	"testing"

	"repro/internal/provenance"
	"repro/internal/valuation"
)

// deltaFixture extends batchFixture's pair cohort with merges the delta
// path must handle beyond plain polynomial renames: a group-coordinate
// merge, a mixed polynomial+group merge, and a 3-ary merge. It returns
// the cohort both as member sets (for DistanceDelta) and as materialized
// BatchCandidates (for the reference paths), in the same order.
func deltaFixture(n int) (*provenance.Agg, []provenance.Annotation, provenance.Groups, [][]provenance.Annotation, []BatchCandidate) {
	p0, anns, cands := batchFixture(n)
	base := provenance.GroupsOf(anns, provenance.NewMapping())
	var sets [][]provenance.Annotation
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			sets = append(sets, []provenance.Annotation{anns[i], anns[j]})
		}
	}
	extras := [][]provenance.Annotation{
		{"G1", "G2"},
		{anns[0], "G1"},
		{anns[1], anns[3], anns[5]},
	}
	for _, ms := range extras {
		h := provenance.MergeMapping("Z", ms...)
		g := make(provenance.Groups, len(base)+1)
		for name, members := range base {
			g[name] = members
		}
		var merged []provenance.Annotation
		for _, m := range ms {
			merged = append(merged, base.Members(m)...)
			delete(g, m)
		}
		g["Z"] = merged
		sets = append(sets, ms)
		cands = append(cands, BatchCandidate{Expr: p0.Apply(h), Cumulative: h, Groups: g})
	}
	return p0, anns, base, sets, cands
}

// TestDistanceDeltaMatchesDistanceAndBatch pins the tentpole's core
// contract: probe-without-materialize scoring is bit-identical to both a
// per-candidate Distance call and the DistanceBatch sweep, and the
// incremental candidate sizes equal Apply(...).Size().
func TestDistanceDeltaMatchesDistanceAndBatch(t *testing.T) {
	p0, anns, base, sets, cands := deltaFixture(8)
	for _, maxErr := range []float64{0, 25} {
		d := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
		d.MaxError = maxErr
		got, sizes, ok := d.DistanceDelta(p0, p0, provenance.NewMapping(), base, sets, "Z")
		if !ok {
			t.Fatalf("maxErr=%g: DistanceDelta fell back", maxErr)
		}
		bref := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
		bref.MaxError = maxErr
		batch := bref.DistanceBatch(p0, cands)
		ref := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
		ref.MaxError = maxErr
		for i, c := range cands {
			want := ref.Distance(p0, c.Expr, c.Cumulative, c.Groups)
			if got[i] != want {
				t.Fatalf("maxErr=%g candidate %d (%v): delta %v != distance %v", maxErr, i, sets[i], got[i], want)
			}
			if got[i] != batch[i] {
				t.Fatalf("maxErr=%g candidate %d (%v): delta %v != batch %v", maxErr, i, sets[i], got[i], batch[i])
			}
			if want := c.Expr.Size(); sizes[i] != want {
				t.Fatalf("candidate %d (%v): incremental size %d != Apply size %d", i, sets[i], sizes[i], want)
			}
		}
	}
}

// TestDistanceDeltaMidRunMatchesBatch checks the same equivalence on a
// mid-run step (non-identity cumulative mapping, multi-member base
// groups) — the regime the delta engine is built for.
func TestDistanceDeltaMidRunMatchesBatch(t *testing.T) {
	sc := benchStep(t)
	d := estimator(valuation.NewCancelSingleAnnotation(sc.anns), Euclidean())
	got, sizes, ok := d.DistanceDelta(sc.p0, sc.cur, sc.cum, sc.base, sc.sets, "Z")
	if !ok {
		t.Fatal("DistanceDelta fell back on a mid-run step")
	}
	bref := estimator(valuation.NewCancelSingleAnnotation(sc.anns), Euclidean())
	batch := bref.DistanceBatch(sc.p0, sc.cands)
	ref := estimator(valuation.NewCancelSingleAnnotation(sc.anns), Euclidean())
	for i, c := range sc.cands {
		want := ref.Distance(sc.p0, c.Expr, c.Cumulative, c.Groups)
		if got[i] != want {
			t.Fatalf("candidate %d (%v): delta %v != distance %v", i, sc.sets[i], got[i], want)
		}
		if got[i] != batch[i] {
			t.Fatalf("candidate %d (%v): delta %v != batch %v", i, sc.sets[i], got[i], batch[i])
		}
		if want := c.Expr.Size(); sizes[i] != want {
			t.Fatalf("candidate %d (%v): incremental size %d != Apply size %d", i, sc.sets[i], sizes[i], want)
		}
	}
}

// TestDistanceDeltaParallelBitIdentical: like the batch sweep, the delta
// sweep partitions candidates across workers while each candidate's sum
// accumulates in valuation order, so results are byte-identical at any
// Parallelism.
func TestDistanceDeltaParallelBitIdentical(t *testing.T) {
	p0, anns, base, sets, _ := deltaFixture(8)
	seq := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
	want, _, ok := seq.DistanceDelta(p0, p0, provenance.NewMapping(), base, sets, "Z")
	if !ok {
		t.Fatal("DistanceDelta fell back")
	}
	for _, workers := range []int{2, 4, 16} {
		par := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
		par.Parallelism = workers
		got, _, ok := par.DistanceDelta(p0, p0, provenance.NewMapping(), base, sets, "Z")
		if !ok {
			t.Fatalf("parallelism %d: DistanceDelta fell back", workers)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("parallelism %d candidate %d: %v != %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestDistanceDeltaSharedSamples: sampling mode draws one shared sample
// set up front exactly like DistanceBatch, so the same seed produces
// bitwise-identical distances on both paths, at any Parallelism.
func TestDistanceDeltaSharedSamples(t *testing.T) {
	p0, anns, base, sets, cands := deltaFixture(8)
	want := func() []float64 {
		e := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
		e.Samples = 5
		e.Rand = rand.New(rand.NewSource(7))
		return e.DistanceBatch(p0, cands)
	}()
	for _, workers := range []int{1, 4} {
		e := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
		e.Samples = 5
		e.Rand = rand.New(rand.NewSource(7))
		e.Parallelism = workers
		got, _, ok := e.DistanceDelta(p0, p0, provenance.NewMapping(), base, sets, "Z")
		if !ok {
			t.Fatal("DistanceDelta fell back")
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d candidate %d: delta %v != batch %v with same seed", workers, i, got[i], want[i])
			}
		}
	}
}

func TestDistanceDeltaStats(t *testing.T) {
	p0, anns, base, sets, _ := deltaFixture(8)
	e := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
	_, _, ok := e.DistanceDelta(p0, p0, provenance.NewMapping(), base, sets, "Z")
	if !ok {
		t.Fatal("DistanceDelta fell back")
	}
	st := e.Stats()
	if st.DeltaCalls != 1 {
		t.Fatalf("DeltaCalls = %d, want 1", st.DeltaCalls)
	}
	if st.DeltaCandidates != uint64(len(sets)) {
		t.Fatalf("DeltaCandidates = %d, want %d", st.DeltaCandidates, len(sets))
	}
	vals := uint64(len(e.Class.Valuations()))
	if got, want := st.DeltaSkips+st.DeltaFullEvals, uint64(len(sets))*vals; got != want {
		t.Fatalf("DeltaSkips+DeltaFullEvals = %d, want %d (every candidate × valuation pair)", got, want)
	}
	if st.DeltaSkips == 0 {
		t.Fatal("expected truth-delta short-circuits on unaffected valuations")
	}
	if st.DeltaFullEvals == 0 {
		t.Fatal("expected full evaluations on truth-changing valuations")
	}
	if st.Evaluations != st.DeltaFullEvals {
		t.Fatalf("Evaluations = %d, want %d (only full evals compute VAL-FUNC summands)", st.Evaluations, st.DeltaFullEvals)
	}
	if st.DeltaSubtreeEvals == 0 {
		t.Fatal("expected subtree re-evaluations to be counted")
	}
	if st.DistanceCalls != 0 || st.BatchCalls != 0 {
		t.Fatalf("DistanceCalls = %d, BatchCalls = %d, want 0 (delta only)", st.DistanceCalls, st.BatchCalls)
	}
}

// sliceExpr is an Expression whose dynamic type is non-comparable (slice
// field). Identity-keyed caches must not compare it — interface
// comparison of two sliceExpr values panics at runtime.
type sliceExpr struct {
	weights []float64
	anns    []provenance.Annotation
}

func (s sliceExpr) Size() int                                      { return 1 }
func (s sliceExpr) Annotations() []provenance.Annotation           { return s.anns }
func (s sliceExpr) Apply(provenance.Mapping) provenance.Expression { return s }
func (s sliceExpr) Eval(v provenance.Valuation) provenance.Result {
	var total float64
	for i, a := range s.anns {
		if v.Truth(a) {
			total += s.weights[i]
		}
	}
	return provenance.Vector{"": total}
}
func (s sliceExpr) AlignResult(r provenance.Result, _ provenance.Mapping) provenance.Result {
	return r
}
func (s sliceExpr) String() string { return "sliceExpr" }

// TestDistanceDeltaFallback: expressions that cannot be planned, and
// probes that cannot be compiled soundly, report ok=false without
// touching the delta counters, so callers fall back to DistanceBatch.
func TestDistanceDeltaFallback(t *testing.T) {
	p0, anns, base, sets, _ := deltaFixture(8)
	e := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
	opaque := sliceExpr{weights: []float64{1}, anns: anns[:1]}
	if _, _, ok := e.DistanceDelta(opaque, opaque, provenance.NewMapping(), base, sets, "Z"); ok {
		t.Fatal("DistanceDelta must fall back on a non-aggregated expression")
	}
	// newAnn already occurs in the expression: rewritten tensor keys could
	// collide with unaffected ones, so the probe refuses to compile.
	if _, _, ok := e.DistanceDelta(p0, p0, provenance.NewMapping(), base, sets, anns[0]); ok {
		t.Fatal("DistanceDelta must fall back when newAnn occurs in the expression")
	}
	if st := e.Stats(); st.DeltaCalls != 0 || st.DeltaCandidates != 0 {
		t.Fatalf("fallbacks counted as delta calls: %+v", st)
	}
}

// TestEvalOriginalNonComparableExpression is a regression test: the
// original-expression cache used to compare p0 against its previous key
// with !=, which panics ("comparing uncomparable type") on the second
// valuation for any Expression with a non-comparable dynamic type. Such
// expressions are now evaluated uncached.
func TestEvalOriginalNonComparableExpression(t *testing.T) {
	anns := []provenance.Annotation{"a1", "a2"}
	p0 := sliceExpr{weights: []float64{1, 2}, anns: anns}
	pc := sliceExpr{weights: []float64{3}, anns: anns[:1]}
	e := estimator(valuation.NewCancelSingleAnnotation(anns), Euclidean())
	groups := provenance.GroupsOf(anns, provenance.NewMapping())
	first := e.Distance(p0, pc, provenance.NewMapping(), groups)
	second := e.Distance(p0, pc, provenance.NewMapping(), groups)
	if first != second {
		t.Fatalf("uncached evaluation not deterministic: %v != %v", first, second)
	}
	st := e.Stats()
	if st.CacheHits != 0 {
		t.Fatalf("CacheHits = %d, want 0 (non-comparable expressions bypass the cache)", st.CacheHits)
	}
	if st.CacheMisses == 0 {
		t.Fatal("uncached evaluations must still count as cache misses")
	}
}

func BenchmarkSummarizeStepScoringDelta(b *testing.B) {
	sc := benchStep(b)
	e := estimator(valuation.NewCancelSingleAnnotation(sc.anns), Euclidean())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := e.DistanceDelta(sc.p0, sc.cur, sc.cum, sc.base, sc.sets, "Z"); !ok {
			b.Fatal("DistanceDelta fell back")
		}
	}
}
