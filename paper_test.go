package prox_test

// Paper conformance suite: each test walks one worked example of the
// thesis through the public API and checks the numbers the text derives.

import (
	"math"
	"testing"

	"repro"
)

// TestExample221And231 builds the aggregator output of Example 2.2.1 —
// user annotations multiplied by activity guards over Stats provenance —
// and checks the truth-valuation semantics of Example 2.3.1.
func TestExample221And231(t *testing.T) {
	// P = U1·[S1·U1 ⊗ 5 > 2] ⊗ (3,1) ⊕ U2·[S2·U2 ⊗ 3 > 2] ⊗ (5,1) ⊕
	//     U3·[S3·U3 ⊗ 13 > 2] ⊗ (3,1)     (MAX aggregation)
	src := "U1·[S1·U1 ⊗ 5 > 2] ⊗ (3,1)@MP ⊕ U2·[S2·U2 ⊗ 3 > 2] ⊗ (5,1)@MP ⊕ U3·[S3·U3 ⊗ 13 > 2] ⊗ (3,1)@MP"
	p, err := prox.ParseAgg(prox.AggMax, src)
	if err != nil {
		t.Fatal(err)
	}

	// Example 2.3.1: S1 ↦ 0, U1 ↦ 1 maps the first summand to 0 — the
	// inequality does not hold, the review is discarded.
	v1 := prox.CancelAnnotation("S1")
	res := p.Eval(v1).(prox.Vector)
	if res.At("MP") != 5 { // U1's 3 is gone; the MAX is U2's 5
		t.Fatalf("cancel S1: MAX = %g, want 5", res.At("MP"))
	}
	// Cancelling U2 and S1 leaves only U3's review.
	res = p.Eval(prox.CancelSet("x", "S1", "U2")).(prox.Vector)
	if res.At("MP") != 3 {
		t.Fatalf("cancel S1,U2: MAX = %g, want 3", res.At("MP"))
	}
	// "In contrast, if S1 is mapped to 1 then the condition would hold
	// and we would have (1·1) ⊗ (3,1) ≡ 3": with everything true U1
	// contributes 3 (the MAX is still 5 via U2; cancel U2,U3 to see it).
	res = p.Eval(prox.CancelSet("x", "U2", "U3")).(prox.Vector)
	if res.At("MP") != 3 {
		t.Fatalf("only U1: MAX = %g, want 3", res.At("MP"))
	}
}

// TestExample311Summaries applies the two mappings of Example 3.1.1 to
// the simplified P_s and checks the printed summaries.
func TestExample311Summaries(t *testing.T) {
	// Mapping all S_i to 1 discards the inequality terms:
	guarded, err := prox.ParseAgg(prox.AggMax,
		"U1·[S1 ⊗ 5 > 2] ⊗ (3,1)@MP ⊕ U2·[S2 ⊗ 3 > 2] ⊗ (5,1)@MP ⊕ U3·[S3 ⊗ 13 > 2] ⊗ (3,1)@MP")
	if err != nil {
		t.Fatal(err)
	}
	ps := guarded.Apply(prox.MergeMapping(prox.One, "S1", "S2", "S3")).(*prox.Agg)
	want, _ := prox.ParseAgg(prox.AggMax, "U1 ⊗ (3,1)@MP ⊕ U2 ⊗ (5,1)@MP ⊕ U3 ⊗ (3,1)@MP")
	if ps.String() != want.String() {
		t.Fatalf("P_s = %s, want %s", ps, want)
	}

	// P'_s = Female ⊗ (5,2) ⊕ U3 ⊗ (3,1)
	female := ps.Apply(prox.MergeMapping("Female", "U1", "U2")).(*prox.Agg)
	if len(female.Tensors) != 2 {
		t.Fatalf("P'_s = %s", female)
	}
	for _, ten := range female.Tensors {
		if ten.Prov.String() == "Female" && (ten.Value != 5 || ten.Count != 2) {
			t.Fatalf("Female tensor = (%g,%d), want (5,2)", ten.Value, ten.Count)
		}
	}

	// P''_s = Audience ⊗ (3,2) ⊕ U2 ⊗ (5,1)
	audience := ps.Apply(prox.MergeMapping("Audience", "U1", "U3")).(*prox.Agg)
	for _, ten := range audience.Tensors {
		if ten.Prov.String() == "Audience" && (ten.Value != 3 || ten.Count != 2) {
			t.Fatalf("Audience tensor = (%g,%d), want (3,2)", ten.Value, ten.Count)
		}
	}
}

// TestExample323Distances checks the distance claims of Example 3.2.3:
// P”_s is at distance 0 from P_s w.r.t. single-cancellation valuations,
// P'_s is not (it differs for the valuation cancelling U2).
func TestExample323Distances(t *testing.T) {
	ps, _ := prox.ParseAgg(prox.AggMax, "U1 ⊗ (3,1)@MP ⊕ U2 ⊗ (5,1)@MP ⊕ U3 ⊗ (3,1)@MP")
	users := []prox.Annotation{"U1", "U2", "U3"}
	class := prox.NewCancelSingleAnnotation(users)

	dist := func(h prox.Mapping) float64 {
		pc := ps.Apply(h)
		est := &prox.Estimator{Class: class, Phi: prox.CombineOr, VF: prox.AbsDiff()}
		return est.Distance(ps, pc, h, prox.GroupsOf(users, h))
	}
	if d := dist(prox.MergeMapping("Audience", "U1", "U3")); d != 0 {
		t.Fatalf("dist(P_s, P''_s) = %g, want 0", d)
	}
	if d := dist(prox.MergeMapping("Female", "U1", "U2")); d <= 0 {
		t.Fatalf("dist(P_s, P'_s) = %g, want > 0", d)
	}
}

// TestExample521Wikipedia reproduces the Wikipedia use case: the edit
// provenance, the printed summary, and the valuation walk-through
// (cancelling Dubulge and the vector transformation).
func TestExample521Wikipedia(t *testing.T) {
	p, err := prox.ParseAgg(prox.AggSum,
		`SalubriousToxin·Adele ⊗ (0,1)@Adele ⊕ `+
			`Dubulge·CelineDion ⊗ (1,1)@CelineDion ⊕ `+
			`DrBackInTheStreet·LoriBlack ⊗ (1,1)@LoriBlack ⊕ `+
			`JasperTheFriendlyPunk·AlecBaillie ⊗ (1,1)@AlecBaillie`)
	if err != nil {
		t.Fatal(err)
	}

	// v cancels Dubulge: v(p) = (Adele:0, CelineDion:0, LoriBlack:1,
	// AlecBaillie:1) — the paper's vector.
	v := prox.CancelAnnotation("Dubulge")
	orig := p.Eval(v).(prox.Vector)
	wantOrig := map[prox.Annotation]float64{
		"Adele": 0, "CelineDion": 0, "LoriBlack": 1, "AlecBaillie": 1,
	}
	for k, want := range wantOrig {
		if orig.At(k) != want {
			t.Fatalf("v(p)[%s] = %g, want %g", k, orig.At(k), want)
		}
	}

	// The paper's summary: users merged by contribution level, pages by
	// WordNet concept.
	h := prox.MergeMapping("Top-Contributor", "DrBackInTheStreet", "JasperTheFriendlyPunk").
		Compose(prox.MergeMapping("Reviewer", "SalubriousToxin", "Dubulge")).
		Compose(prox.MergeMapping("wordnet_guitarist", "LoriBlack", "AlecBaillie")).
		Compose(prox.MergeMapping("wordnet_singer", "Adele", "CelineDion"))
	summary := p.Apply(h).(*prox.Agg)

	// P' = (Top-Contributor·wordnet_guitarist) ⊗ (2,2) ⊕
	//      (Reviewer·wordnet_singer) ⊗ (1,2)
	if len(summary.Tensors) != 2 {
		t.Fatalf("summary = %s", summary)
	}
	base := summary.Eval(prox.AllTrue).(prox.Vector)
	if base.At("wordnet_guitarist") != 2 || base.At("wordnet_singer") != 1 {
		t.Fatalf("summary eval = %s", base.ResultString())
	}

	// v'(p') with φ=OR: (guitarist:2, singer:1) — cancelling Dubulge does
	// not cancel "Reviewer" (SalubriousToxin remains true).
	groups := prox.GroupsOf(p.Annotations(), h)
	ext := prox.ExtendValuation(v, groups, prox.CombineOr)
	sv := summary.Eval(ext).(prox.Vector)
	if sv.At("wordnet_guitarist") != 2 || sv.At("wordnet_singer") != 1 {
		t.Fatalf("v'(p') = %s, want (guitarist:2, singer:1)", sv.ResultString())
	}

	// The vector transformation: the original vector re-keyed through h
	// is (guitarist:2, singer:0); the VAL-FUNC value is the Euclidean
	// distance between (2,0) and (2,1), i.e. 1.
	aligned := summary.AlignResult(orig, h).(prox.Vector)
	if aligned.At("wordnet_guitarist") != 2 || aligned.At("wordnet_singer") != 0 {
		t.Fatalf("aligned = %s, want (guitarist:2, singer:0)", aligned.ResultString())
	}
	if d := prox.Euclidean().F(v, aligned, sv); math.Abs(d-1) > 1e-12 {
		t.Fatalf("VAL-FUNC = %g, want 1", d)
	}
}

// TestExample522DDP reproduces the DDP use case end to end: the summary
// rewrite and the cost-valuation walk-through.
func TestExample522DDP(t *testing.T) {
	// Both conditions ≠ 0 so that the mapped executions coincide (the
	// form the paper's printed summary implies).
	e, err := prox.ParseDDP("<c1:3,1>·<0,[d1·d2]!=0> + <0,[d3·d2]!=0>·<c2:3,1>")
	if err != nil {
		t.Fatal(err)
	}
	h := prox.MergeMapping("D1", "d1", "d3").Compose(prox.MergeMapping("C1", "c1", "c2"))
	s := e.Apply(h).(*prox.DDPExpr)
	if len(s.Execs) != 1 {
		t.Fatalf("summary = %s, want one execution", s)
	}

	// The valuation cancelling all C1-cost variables: v(p) = ⟨0, true⟩;
	// with MAX/OR combination v'(p') = ⟨0, true⟩; VAL-FUNC 0.
	v := prox.CancelSet("cancel C1 costs", "c1", "c2")
	orig := e.Eval(v).(prox.DDPCostTruth)
	if !orig.Truth || orig.Cost != 0 {
		t.Fatalf("v(p) = %+v, want ⟨0,true⟩", orig)
	}
	groups := prox.GroupsOf(e.Annotations(), h)
	ext := prox.ExtendValuation(v, groups, prox.CombineOr)
	summ := s.Eval(ext).(prox.DDPCostTruth)
	if !summ.Truth || summ.Cost != 0 {
		t.Fatalf("v'(p') = %+v, want ⟨0,true⟩", summ)
	}
	if d := prox.DDPValFunc(50).F(v, orig, summ); d != 0 {
		t.Fatalf("VAL-FUNC = %g, want 0 ('no error for this valuation')", d)
	}
}

// TestAlgorithmFlowExample423 re-checks the full algorithm-flow example
// through the high-level Summarize API (the Audience merge must win).
func TestAlgorithmFlowExample423(t *testing.T) {
	p, _ := prox.ParseAgg(prox.AggMax,
		"U1 ⊗ (3,1)@MP ⊕ U2 ⊗ (5,1)@MP ⊕ U3 ⊗ (3,1)@MP ⊕ U2 ⊗ (4,1)@BJ")
	u := prox.NewUniverse()
	u.Add("U1", "users", prox.Attrs{"gender": "F", "role": "audience"})
	u.Add("U2", "users", prox.Attrs{"gender": "F", "role": "critic"})
	u.Add("U3", "users", prox.Attrs{"gender": "M", "role": "audience"})
	u.Add("MP", "movies", nil)
	u.Add("BJ", "movies", nil)

	sum, err := prox.Summarize(p, prox.Options{
		Universe: u,
		Rules: []prox.Rule{
			prox.SameTable(),
			prox.TableScoped("users", prox.SharedAttr("gender", "role")),
			prox.TableScoped("movies", prox.NeverRule()),
		},
		Class:    prox.NewCancelSingleAnnotation([]prox.Annotation{"U1", "U2", "U3"}),
		WDist:    1,
		MaxSteps: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sum.Steps) != 1 || sum.Steps[0].New != "role:audience" {
		t.Fatalf("steps = %+v, want the Audience merge", sum.Steps)
	}
	if sum.Dist != 0 {
		t.Fatalf("distance = %g, want 0", sum.Dist)
	}
}
