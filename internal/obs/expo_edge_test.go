package obs

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestExpositionEdgeCasesGolden pins the text-format corner cases
// against a golden file: NaN/±Inf sample values, label values needing
// escaping (newline, quote, backslash — and tab/UTF-8 which must NOT be
// escaped), negative histogram bounds, an explicit +Inf bound (filtered
// at registration), NaN observations (dropped), and bucket exemplars.
func TestExpositionEdgeCasesGolden(t *testing.T) {
	r := NewRegistry()

	r.Gauge("prox_edge_values", "Non-finite sample values.", Labels{"kind": "nan"}).Set(math.NaN())
	r.Gauge("prox_edge_values", "Non-finite sample values.", Labels{"kind": "neg"}).Set(math.Inf(-1))
	r.Gauge("prox_edge_values", "Non-finite sample values.", Labels{"kind": "pos"}).Set(math.Inf(1))

	for _, path := range []string{
		"a\nb",
		`back\slash`,
		`say "hi"`,
		"tab\tand-ünïcode",
	} {
		r.Counter("prox_edge_labels_total", "Label-value escaping.", Labels{"path": path}).Inc()
	}

	h := r.Histogram("prox_edge_delta", "Negative bounds and an explicit +Inf bound.",
		[]float64{-1, 0, 2.5, math.Inf(1)}, nil)
	for _, v := range []float64{-3, -1, 1, 99} {
		h.Observe(v)
	}
	h.Observe(math.NaN()) // dropped: must not touch count or sum
	h.observe(0.5, "4bf92f3577b34da6a3ce929d0e0e4736", time.Unix(1_700_000_000, 500_000_000).UTC())
	h.observe(1e6, "00f067aa0ba902b74bf92f3577b34da6", time.Unix(1_700_000_001, 0).UTC())

	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	got := sb.String()

	golden := filepath.Join("testdata", "exposition_edge.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}
