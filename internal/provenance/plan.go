package provenance

import "sort"

// This file implements the incremental candidate-evaluation engine: a
// Plan compiles an aggregated expression once per summarization step into
// flat node arrays with an annotation→node dependency index, and a Probe
// compiles the structural delta of one candidate merge (members ↦ fresh
// annotation) without materializing the candidate expression.
//
// Soundness rests on the homomorphism identity Eval(h(p), v') =
// Eval(p, v'∘h): a candidate h renames only the probed members, so its
// evaluation equals the shared expression's evaluation with the members'
// truths substituted by the merged group's φ-truth. The Plan memoizes
// per-node values of the shared expression per valuation; a Probe marks
// the subtrees containing member occurrences dirty and re-evaluates only
// those, reusing every unaffected sibling from the memo.

type nodeKind uint8

const (
	nodeVar nodeKind = iota
	nodeConst
	nodeSum
	nodeProd
	nodeCmp
)

// planNode is one flattened polynomial node. kids index into Plan.nodes;
// a Cmp node stores its Inner as kids[0].
type planNode struct {
	kind  nodeKind
	ann   Annotation // nodeVar
	n     int        // nodeConst
	kids  []int32
	value float64 // nodeCmp
	bound float64 // nodeCmp
	op    CmpOp   // nodeCmp
}

// planTensor mirrors one tensor of the planned expression with its
// compiled polynomial root and the Simplify merge key.
type planTensor struct {
	root  int32
	prov  Expr
	value float64
	count int
	group Annotation
	key   string // prov.Key() + "|" + group, Simplify's merge key
	size  int    // prov.Size()
}

// Plan is a compiled evaluation structure over one aggregated expression
// (*Agg), built once per summarization step and shared read-only by every
// candidate probe of the step's cohort. All mutable evaluation state
// lives in PlanScratch, so one Plan serves concurrent evaluators.
type Plan struct {
	agg     *Agg
	nodes   []planNode
	parent  []int32 // parent[id] is id's parent node, -1 for roots
	tensors []planTensor

	annVars      map[Annotation][]int32 // annotation → Var node ids
	annTensors   map[Annotation][]int32 // annotation → ascending tensor ids whose polynomial mentions it
	groupTensors map[Annotation][]int32 // group → ascending tensor ids
	anns         map[Annotation]struct{}

	size int
	bad  bool
}

// NewPlan compiles e into a Plan. It returns nil when e cannot be planned
// — it is not an aggregated expression (*Agg), or a polynomial contains
// an unknown node type — and callers must fall back to full evaluation.
func NewPlan(e Expression) *Plan {
	g, ok := e.(*Agg)
	if !ok || g == nil {
		return nil
	}
	p := &Plan{
		agg:          g,
		tensors:      make([]planTensor, len(g.Tensors)),
		annVars:      make(map[Annotation][]int32),
		annTensors:   make(map[Annotation][]int32),
		groupTensors: make(map[Annotation][]int32),
		anns:         make(map[Annotation]struct{}),
		size:         g.Size(),
	}
	scratch := make(map[Annotation]struct{})
	for i, t := range g.Tensors {
		root := p.compile(t.Prov, -1)
		p.tensors[i] = planTensor{
			root: root, prov: t.Prov, value: t.Value, count: t.Count,
			group: t.Group, key: t.Prov.Key() + "|" + string(t.Group), size: t.Prov.Size(),
		}
		clear(scratch)
		t.Prov.CollectAnns(scratch)
		for a := range scratch {
			p.annTensors[a] = append(p.annTensors[a], int32(i))
			p.anns[a] = struct{}{}
		}
		p.groupTensors[t.Group] = append(p.groupTensors[t.Group], int32(i))
		if t.Group != "" {
			p.anns[t.Group] = struct{}{}
		}
	}
	if p.bad {
		return nil
	}
	return p
}

// Expr returns the expression the plan was compiled from.
func (p *Plan) Expr() *Agg { return p.agg }

func (p *Plan) compile(e Expr, parent int32) int32 {
	id := int32(len(p.nodes))
	p.nodes = append(p.nodes, planNode{})
	p.parent = append(p.parent, parent)
	switch n := e.(type) {
	case Var:
		p.nodes[id] = planNode{kind: nodeVar, ann: n.Ann}
		p.annVars[n.Ann] = append(p.annVars[n.Ann], id)
	case Const:
		p.nodes[id] = planNode{kind: nodeConst, n: n.N}
	case Sum:
		kids := make([]int32, len(n.Terms))
		for i, t := range n.Terms {
			kids[i] = p.compile(t, id)
		}
		p.nodes[id] = planNode{kind: nodeSum, kids: kids}
	case Prod:
		kids := make([]int32, len(n.Factors))
		for i, f := range n.Factors {
			kids[i] = p.compile(f, id)
		}
		p.nodes[id] = planNode{kind: nodeProd, kids: kids}
	case Cmp:
		kids := []int32{p.compile(n.Inner, id)}
		p.nodes[id] = planNode{kind: nodeCmp, kids: kids, value: n.Value, bound: n.Bound, op: n.Op}
	default:
		p.bad = true
		p.nodes[id] = planNode{kind: nodeConst}
	}
	return id
}

// PlanScratch holds the per-evaluator mutable state of plan evaluation:
// the generation-stamped node-value memo of the current valuation and the
// subtree-evaluation counter. Each concurrent evaluator owns one scratch;
// the Plan and its Probes stay read-only after construction.
type PlanScratch struct {
	vals        []int
	stamp       []uint32
	gen         uint32
	contributed map[Annotation]bool

	// SubtreeEvals counts nodes re-evaluated by substituted (dirty-
	// subtree) candidate evaluation since the scratch was created.
	SubtreeEvals uint64
}

// NewScratch returns a scratch sized for the plan.
func (p *Plan) NewScratch() *PlanScratch {
	return &PlanScratch{
		vals:        make([]int, len(p.nodes)),
		stamp:       make([]uint32, len(p.nodes)),
		contributed: make(map[Annotation]bool, len(p.groupTensors)),
	}
}

func (s *PlanScratch) begin() {
	s.gen++
	if s.gen == 0 { // wraparound: invalidate every stamp explicitly
		for i := range s.stamp {
			s.stamp[i] = 0
		}
		s.gen = 1
	}
}

// evalNode evaluates node id under assign, memoized per valuation
// generation. Lazily filled: a Prod short-circuiting at 0 leaves later
// factors unstamped, and they are computed on demand if a probe needs
// them.
func (p *Plan) evalNode(id int32, assign func(Annotation) int, s *PlanScratch) int {
	if s.stamp[id] == s.gen {
		return s.vals[id]
	}
	nd := &p.nodes[id]
	var v int
	switch nd.kind {
	case nodeVar:
		v = assign(nd.ann)
	case nodeConst:
		v = nd.n
	case nodeSum:
		for _, k := range nd.kids {
			v += p.evalNode(k, assign, s)
		}
	case nodeProd:
		v = 1
		for _, k := range nd.kids {
			v *= p.evalNode(k, assign, s)
			if v == 0 {
				break
			}
		}
	case nodeCmp:
		lhs := 0.0
		if p.evalNode(nd.kids[0], assign, s) != 0 {
			lhs = nd.value
		}
		if nd.op.holds(lhs, nd.bound) {
			v = 1
		}
	}
	s.vals[id] = v
	s.stamp[id] = s.gen
	return v
}

// BaseEval evaluates the planned expression under assign (the 0/1 truth
// assignment of the step's extended valuation), starting a new memo
// generation and filling it as a side effect. The returned vector is
// op-for-op identical to Agg.Eval: tensors fold in slice order, a group's
// first nonzero contribution replaces the identity placeholder.
func (p *Plan) BaseEval(assign func(Annotation) int, s *PlanScratch) Vector {
	s.begin()
	clear(s.contributed)
	vec := make(Vector, len(p.groupTensors))
	for i := range p.tensors {
		t := &p.tensors[i]
		if _, ok := vec[t.group]; !ok {
			vec[t.group] = p.agg.Agg.Identity()
		}
		n := p.evalNode(t.root, assign, s)
		if n == 0 {
			continue
		}
		contrib := p.agg.Agg.Scale(t.value, n)
		if s.contributed[t.group] {
			vec[t.group] = p.agg.Agg.Combine(vec[t.group], contrib)
		} else {
			vec[t.group] = contrib
			s.contributed[t.group] = true
		}
	}
	return vec
}

// foldEntry is one tensor of an affected coordinate's re-fold: either an
// unaffected tensor evaluated from the base memo (sub == false) or a
// rewritten tensor evaluated with member substitution (sub == true).
// Entries are ordered by the candidate expression's tensor key, so the
// fold replays the exact combine order of the materialized candidate.
type foldEntry struct {
	key   string
	value float64
	root  int32
	sub   bool
}

type groupFold struct {
	group   Annotation
	entries []foldEntry
}

// Probe is the compiled structural delta of one candidate merge: mapping
// Members to the fresh annotation NewAnn over the plan's expression. It
// is read-only after construction and safe for concurrent evaluation
// with per-evaluator scratches.
type Probe struct {
	// Members are the merged (current) annotations; NewAnn the summary
	// annotation they map to.
	Members []Annotation
	NewAnn  Annotation
	// Size is the candidate expression's provenance size, equal to
	// expr.Apply(MergeMapping(NewAnn, Members...)).Size() without the
	// Apply.
	Size int
	// RenamesGroup reports whether the merge renames at least one vector
	// coordinate (some member is a group annotation of the expression).
	// Such candidates change the result's coordinate space, so they can
	// never reuse the base evaluation even when no truth changes.
	RenamesGroup bool

	plan    *Plan
	dirty   []bool       // per node: lies on a path to a member occurrence
	removed []Annotation // coordinates that disappear (member groups)
	folds   []groupFold  // re-fold programs for the affected coordinates
}

// Probe compiles the candidate that merges members into newAnn. It
// returns nil when the probe cannot be compiled soundly: newAnn already
// occurs in the expression (rewritten tensors could merge with existing
// ones), or a reserved annotation is involved. Callers fall back to
// materializing the candidate.
func (p *Plan) Probe(members []Annotation, newAnn Annotation) *Probe {
	if newAnn == "" || newAnn == Zero || newAnn == One {
		return nil
	}
	if _, ok := p.anns[newAnn]; ok {
		return nil
	}
	memberSet := make(map[Annotation]struct{}, len(members))
	for _, m := range members {
		if m == Zero || m == One || m == newAnn {
			return nil
		}
		memberSet[m] = struct{}{}
	}

	// Affected tensors: polynomial mentions a member, or the group is a
	// member. Ascending tensor ids preserve the expression's tensor order
	// for value merging below.
	affectedSet := make(map[int32]struct{})
	for _, m := range members {
		for _, tid := range p.annTensors[m] {
			affectedSet[tid] = struct{}{}
		}
		for _, tid := range p.groupTensors[m] {
			affectedSet[tid] = struct{}{}
		}
	}
	affected := make([]int32, 0, len(affectedSet))
	for tid := range affectedSet {
		affected = append(affected, tid)
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

	// Rewrite affected tensors through the merge and re-merge them by
	// Simplify's key, combining values in tensor order — the exact work
	// Apply + Simplify would do, restricted to the affected tensors. The
	// representative root evaluates a rewritten tensor's polynomial:
	// Eval(h(q), v') = Eval(q, v'∘h), and merged duplicates share a key,
	// hence an EvalNat value.
	rename := func(a Annotation) Annotation {
		if _, ok := memberSet[a]; ok {
			return newAnn
		}
		return a
	}
	type rewritten struct {
		root  int32
		value float64
		count int
		group Annotation
		key   string
		size  int
	}
	var rews []rewritten
	rewIdx := make(map[string]int)
	size := p.size
	for _, tid := range affected {
		t := &p.tensors[tid]
		size -= t.size
		prov := SimplifyExpr(t.prov.MapAnn(rename))
		if c, ok := prov.(Const); ok && c.N == 0 {
			continue
		}
		group := t.group
		if group != "" {
			if _, ok := memberSet[group]; ok {
				group = newAnn
			}
		}
		key := prov.Key() + "|" + string(group)
		if i, ok := rewIdx[key]; ok {
			rews[i].value = p.agg.Agg.Combine(rews[i].value, t.value)
			rews[i].count += t.count
		} else {
			rewIdx[key] = len(rews)
			rews = append(rews, rewritten{
				root: t.root, value: t.value, count: t.count,
				group: group, key: key, size: prov.Size(),
			})
		}
	}
	for i := range rews {
		size += rews[i].size
	}

	// Coordinates that disappear: member groups lose all their tensors to
	// NewAnn.
	var removed []Annotation
	for _, m := range members {
		if len(p.groupTensors[m]) > 0 {
			removed = append(removed, m)
		}
	}

	// Re-fold programs for every affected coordinate: the unaffected
	// survivors of the group plus the rewrittens that land in it, sorted
	// by the candidate's tensor key (the materialized candidate's
	// per-group combine order).
	outGroups := make(map[Annotation]struct{})
	for _, tid := range affected {
		g := p.tensors[tid].group
		if _, ok := memberSet[g]; ok && g != "" {
			continue // coordinate moves to newAnn, covered by its rewrittens
		}
		outGroups[g] = struct{}{}
	}
	for i := range rews {
		outGroups[rews[i].group] = struct{}{}
	}
	names := make([]Annotation, 0, len(outGroups))
	for g := range outGroups {
		names = append(names, g)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	folds := make([]groupFold, 0, len(names))
	for _, g := range names {
		var entries []foldEntry
		if g != newAnn {
			for _, tid := range p.groupTensors[g] {
				if _, ok := affectedSet[tid]; ok {
					continue
				}
				t := &p.tensors[tid]
				entries = append(entries, foldEntry{key: t.key, value: t.value, root: t.root})
			}
		}
		for i := range rews {
			if rews[i].group == g {
				entries = append(entries, foldEntry{key: rews[i].key, value: rews[i].value, root: rews[i].root, sub: true})
			}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
		folds = append(folds, groupFold{group: g, entries: entries})
	}

	// Dirty marking: every node on a path from a member occurrence to its
	// tensor root is re-evaluated under substitution; everything else
	// reads the base memo.
	dirty := make([]bool, len(p.nodes))
	for _, m := range members {
		for _, id := range p.annVars[m] {
			for n := id; n != -1 && !dirty[n]; n = p.parent[n] {
				dirty[n] = true
			}
		}
	}

	renamesGroup := false
	for _, m := range members {
		if len(p.groupTensors[m]) > 0 {
			renamesGroup = true
			break
		}
	}

	return &Probe{
		Members:      append([]Annotation(nil), members...),
		NewAnn:       newAnn,
		Size:         size,
		RenamesGroup: renamesGroup,
		plan:         p,
		dirty:        dirty,
		removed:      removed,
		folds:        folds,
	}
}

// evalSub evaluates node id with every member occurrence substituted by
// mergedN (the merged group's φ-truth). Non-dirty subtrees read the base
// memo; dirty nodes are recomputed and counted in s.SubtreeEvals.
func (pr *Probe) evalSub(id int32, assign func(Annotation) int, mergedN int, s *PlanScratch) int {
	if !pr.dirty[id] {
		return pr.plan.evalNode(id, assign, s)
	}
	s.SubtreeEvals++
	nd := &pr.plan.nodes[id]
	switch nd.kind {
	case nodeVar:
		// A dirty Var is a member occurrence: it evaluates to the merged
		// group's truth.
		return mergedN
	case nodeConst:
		return nd.n
	case nodeSum:
		v := 0
		for _, k := range nd.kids {
			v += pr.evalSub(k, assign, mergedN, s)
		}
		return v
	case nodeProd:
		v := 1
		for _, k := range nd.kids {
			v *= pr.evalSub(k, assign, mergedN, s)
			if v == 0 {
				return 0
			}
		}
		return v
	case nodeCmp:
		lhs := 0.0
		if pr.evalSub(nd.kids[0], assign, mergedN, s) != 0 {
			lhs = nd.value
		}
		if nd.op.holds(lhs, nd.bound) {
			return 1
		}
	}
	return 0
}

// CandEval returns the candidate expression's evaluation vector under the
// candidate's extended valuation, without materializing the candidate:
// unaffected coordinates are copied from base (the plan's BaseEval for
// the same valuation, whose memo must still be current in s), removed
// coordinates are dropped, and affected coordinates are re-folded with
// only the dirty subtrees re-evaluated. assign must be the assignment
// base was computed with; mergedN is the merged group's φ-truth.
func (pr *Probe) CandEval(assign func(Annotation) int, mergedN int, base Vector, s *PlanScratch) Vector {
	out := make(Vector, len(base)+1)
	for k, v := range base {
		out[k] = v
	}
	for _, g := range pr.removed {
		delete(out, g)
	}
	agg := pr.plan.agg.Agg
	for fi := range pr.folds {
		f := &pr.folds[fi]
		acc := agg.Identity()
		contributed := false
		for i := range f.entries {
			en := &f.entries[i]
			var n int
			if en.sub {
				n = pr.evalSub(en.root, assign, mergedN, s)
			} else {
				n = pr.plan.evalNode(en.root, assign, s)
			}
			if n == 0 {
				continue
			}
			contrib := agg.Scale(en.value, n)
			if contributed {
				acc = agg.Combine(acc, contrib)
			} else {
				acc = contrib
				contributed = true
			}
		}
		out[f.group] = acc
	}
	return out
}
