// jobs.go wires the durable async job engine into the server: job
// submission and lifecycle endpoints, the summarization task run by the
// worker pool, journaling of job state and checkpoints through the
// store, and the startup pass that replays persisted sessions and
// requeues jobs a previous process left queued or running.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/codec"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/provenance"
	"repro/internal/store"
	"repro/internal/stream"
	"repro/internal/summarycache"
)

// jobMeta is the server-side context of a job: which session it
// belongs to and the parameters to journal (and to rebuild the task
// from after a restart). Coalesced duplicate submissions register
// their sessions in attached; the terminal transition fans the result
// out to them and unpins each.
type jobMeta struct {
	sessionID   string
	params      codec.JobParams
	submittedMS int64
	// tenant owns the job's concurrent-job quota slot ("" when
	// anonymous); the terminal transition releases it.
	tenant string
	// attached are the sessions of coalesced submissions (possibly
	// repeating the primary session); each is pinned until the job ends.
	attached []*session
	// finished flips when the terminal transition has been processed;
	// a coalesced submission attaching after that must self-serve from
	// the job's result instead of waiting for a fan-out that already ran.
	// Guarded by s.mu, like attached.
	finished bool
}

func classKind(class string) datasets.ClassKind {
	if class == "attribute" {
		return datasets.CancelSingleAttribute
	}
	return datasets.CancelSingleAnnotation
}

// summarizeOutcome is what a summarize submission resolved to: a
// cached summary served without running anything, or a job — fresh
// (cacheState "miss") or shared with identical in-flight submissions
// (cacheState "inflight"). cacheState is "" when caching is disabled.
type summarizeOutcome struct {
	sess       *session
	params     codec.JobParams
	job        *jobs.Job
	cached     *core.Summary
	cacheState string
}

// submitSummarize validates a summarize request and resolves it
// against the summary cache: a hit replays the cached trace, a miss
// enqueues a job under the request's content address so identical
// concurrent submissions coalesce onto it. extendFrom > 0 makes the
// run a warm-started Extend seeded from that summary version; for a
// from-scratch request whose exact key misses, the cache's warm-start
// index is probed and a matching prior version of the session becomes
// the seed (cacheState "warm"). The request's trace context (from ctx)
// rides along with the job so worker-side spans land in the
// submitter's trace. The returned int is the HTTP status for the
// error, if any.
func (s *Server) submitSummarize(ctx context.Context, req *summarizeRequest, extendFrom int, lane jobs.Lane) (*summarizeOutcome, int, error) {
	sess, ok := s.sessionFor(ctx, req.SessionID)
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("unknown session %q", req.SessionID)
	}
	if req.WDist == 0 && req.WSize == 0 {
		req.WDist, req.WSize = 0.5, 0.5
	}
	params := codec.JobParams{
		WDist:             req.WDist,
		WSize:             req.WSize,
		TargetDist:        req.TargetDist,
		TargetSize:        req.TargetSize,
		Steps:             req.Steps,
		Class:             req.ValuationClass,
		TimeoutMS:         req.TimeoutMS,
		ExtendFromVersion: extendFrom,
	}
	out := &summarizeOutcome{sess: sess, params: params}

	var seed provenance.Groups
	if extendFrom > 0 {
		var err error
		seed, err = s.seedForVersion(sess, extendFrom)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
	}

	var key *summarycache.Key
	if s.cache != nil {
		k := s.cacheKeyFor(sess, params, seed)
		key = &k
		if entry, ok := s.cache.Get(k); ok {
			sum, err := s.serveFromCache(sess, entry)
			if err == nil {
				out.cached, out.cacheState = sum, "hit"
				return out, 0, nil
			}
			// A trace that no longer replays (e.g. the session's expression
			// changed out from under a stale entry) is dropped and recomputed.
			// Drop bypasses OnEvict, so the publisher's byte attribution is
			// released here, at the cache's accounted size.
			s.log.Error("cached summary replay failed; recomputing", "key", entry.Key, "err", err)
			if size, ok := s.cache.Drop(k); ok {
				s.releaseCacheQuota(entry.Tenant, size)
			}
			if s.st != nil {
				if derr := s.st.DropCacheEntry(entry.Key); derr != nil {
					s.log.Error("journaling cache drop failed", "key", entry.Key, "err", derr)
				}
			}
		}
		// The exact address missed. A from-scratch request can still
		// warm-start: the prefix index remembers the summaries this session
		// published under the same parameters before its expression grew by
		// ingest; the freshest one that maps back to a version becomes the
		// seed of an Extend run.
		if seed == nil {
			if entry, ok := s.cache.GetWarm(s.warmPrefixFor(sess, params)); ok {
				if v := s.versionForEntry(sess, entry); v > 0 {
					if warmSeed, err := s.seedForVersion(sess, v); err == nil && len(warmSeed) > 0 {
						params.ExtendFromVersion = v
						out.params = params
						seed = warmSeed
						k2 := s.cacheKeyFor(sess, params, seed)
						key = &k2
						out.cacheState = "warm"
						s.met.cacheWarmHits.Inc()
						s.log.Info("warm-starting summarize from prior version",
							"session", sess.id, "version", v)
						if entry2, ok := s.cache.Get(k2); ok {
							// The seeded run itself has already been computed.
							if sum, err := s.serveFromCache(sess, entry2); err == nil {
								out.cached, out.cacheState = sum, "hit"
								return out, 0, nil
							}
							if size, ok := s.cache.Drop(k2); ok {
								s.releaseCacheQuota(entry2.Tenant, size)
							}
							if s.st != nil {
								if derr := s.st.DropCacheEntry(entry2.Key); derr != nil {
									s.log.Error("journaling cache drop failed", "key", entry2.Key, "err", derr)
								}
							}
						}
					}
				}
			}
		}
		s.updateCacheGauges()
	}

	// Admission control and the tenant's concurrent-job quota gate the
	// enqueue: both run after the cache lookups (a cached summary costs
	// nothing and should never be shed) and before any queue slot or
	// worker is claimed.
	t := tenantFrom(ctx)
	if err := s.admitJob(t, s.estimateJobCost(s.provOf(sess), params.Class)); err != nil {
		return nil, http.StatusTooManyRequests, err
	}
	if err := s.acquireJobQuota(t); err != nil {
		return nil, http.StatusTooManyRequests, err
	}

	trace := ""
	if sc := obs.SpanContextFromContext(ctx); sc.Valid() {
		trace = sc.Traceparent()
	}
	job, coalesced, err := s.submitJob(sess, "", trace, tenantID(t), lane, params, nil, key, seed)
	if err != nil {
		s.releaseJobQuota(tenantID(t))
		switch {
		case errors.Is(err, jobs.ErrQueueFull):
			capacity := s.queueSize
			if lane == jobs.LaneBulk && s.bulkQueueSize > 0 {
				capacity = s.bulkQueueSize
			}
			return nil, http.StatusTooManyRequests,
				s.reject(t, rejectQueueFull, time.Second, "%s job queue full (capacity %d): retry later", lane, capacity)
		case errors.Is(err, jobs.ErrShutdown):
			return nil, http.StatusServiceUnavailable, err
		default:
			return nil, http.StatusBadRequest, err
		}
	}
	if coalesced {
		// The submission rides on an existing job, which already holds its
		// own submitter's quota slot; this waiter occupies no worker.
		s.releaseJobQuota(tenantID(t))
	}
	out.job = job
	now := time.Now()
	if coalesced {
		// This submission rides on another request's job. Cross-link the
		// traces: mark the request span with the leader's job, and drop a
		// waiter marker into the leader's trace so its tree shows every
		// party sharing the run.
		if span := obs.SpanFromContext(ctx); span != nil {
			span.SetAttr("coalescedInto", job.ID)
		}
		if lsc, perr := obs.ParseTraceparent(job.Trace()); perr == nil {
			attrs := []obs.Attr{obs.KV("job", job.ID)}
			if trace != "" {
				attrs = append(attrs, obs.KV("waiterTrace", traceIDOf(trace)))
			}
			s.tracer.AddSpanUnder(lsc, "job.coalesced-waiter", now, now, attrs...)
		}
	} else {
		s.tracer.AddSpan(ctx, "job.enqueue", now, now, obs.KV("job", job.ID), obs.KV("lane", lane.String()))
	}
	if s.cache != nil {
		switch {
		case coalesced:
			out.cacheState = "inflight"
			s.met.cacheCoalesced.Inc()
		case out.cacheState == "": // not warm-started
			out.cacheState = "miss"
			s.met.cacheMisses.Inc()
		}
	}
	if len(seed) > 0 && !coalesced {
		s.met.streamExtends.Inc()
	}
	return out, 0, nil
}

// submitJob enqueues one summarization job for sess, pinning the
// session against eviction for the job's lifetime. An empty id draws a
// fresh one; a resumed job passes its persisted id and latest
// checkpoint. trace is the submitter's opaque W3C traceparent ("" when
// untraced); it is carried by the job and journaled with it, so the
// worker's spans — and a post-restart resume's spans — join the
// original trace. A non-nil cache key makes the submission
// coalescible: when an identical job is already in flight, no new job
// starts — the session attaches to the running one (coalesced=true)
// and receives its summary when it completes. A non-empty seed makes
// the run a warm-started Extend from that partition (ignored when a
// checkpoint is resumed — the checkpoint's trace already carries the
// seed prefix).
func (s *Server) submitJob(sess *session, id, trace, tenantID string, lane jobs.Lane, params codec.JobParams, cp *core.Checkpoint, key *summarycache.Key, seed provenance.Groups) (*jobs.Job, bool, error) {
	s.mu.Lock()
	if id == "" {
		s.jobSeq++
		id = "j" + strconv.Itoa(s.jobSeq)
	}
	meta := &jobMeta{
		sessionID:   sess.id,
		params:      params,
		submittedMS: time.Now().UnixMilli(),
		tenant:      tenantID,
	}
	s.jobMeta[id] = meta
	sess.active++
	// Snapshot the expression under the lock: a concurrent ingest swaps
	// sess.prov, and the job must run on the expression its cache key was
	// computed from.
	prov := sess.prov
	s.mu.Unlock()

	dedupKey := ""
	if key != nil {
		dedupKey = "c:" + key.String()
	}
	job, coalesced, err := s.jm.SubmitLane(id, dedupKey, trace, lane, time.Duration(params.TimeoutMS)*time.Millisecond, s.summarizeTask(sess, prov, id, lane, params, cp, key, seed))
	if err != nil {
		s.mu.Lock()
		delete(s.jobMeta, id)
		sess.active--
		s.mu.Unlock()
		return nil, false, err
	}
	if coalesced {
		// The fresh id never became a job; this submission rides on
		// job.ID instead. Attach the session so the shared job's terminal
		// transition publishes to it and unpins it — unless that
		// transition has already run, in which case serve directly.
		s.mu.Lock()
		delete(s.jobMeta, id)
		shared := s.jobMeta[job.ID]
		if shared != nil && !shared.finished {
			shared.attached = append(shared.attached, sess)
			s.mu.Unlock()
		} else {
			sess.active--
			s.mu.Unlock()
			if st := job.Status(); st.State == jobs.Done {
				if sum, ok := st.Result.(*core.Summary); ok {
					s.mu.Lock()
					sess.summary = sum
					sess.class = classKind(params.Class)
					s.mu.Unlock()
				}
			}
		}
	}
	return job, coalesced, nil
}

// summarizeTask builds the worker-pool task for one job: construct the
// summarizer (with a checkpoint sink when a store is attached), run —
// resuming from cp if the job was interrupted before a restart, or
// warm-starting from seed when one is given — and publish the summary
// on the session and (with a key) in the summary cache. The cache
// publish happens before the job goes terminal, so a submission never
// observes a finished job it cannot coalesce onto without also finding
// the entry it would have computed. prov is the expression snapshot the
// submission keyed on; the task must not read sess.prov, which a
// concurrent ingest may have advanced.
func (s *Server) summarizeTask(sess *session, prov *provenance.Agg, jobID string, lane jobs.Lane, params codec.JobParams, cp *core.Checkpoint, key *summarycache.Key, seed provenance.Groups) jobs.Task {
	return func(ctx context.Context) (any, error) {
		// Rejoin the submitter's trace: the job carries the original
		// traceparent (or, after a restart, the pre-kill run's job span),
		// so spans from this worker — and from a crash-resumed successor —
		// all land under one trace ID.
		tp := jobs.TraceFromContext(ctx)
		if sc, perr := obs.ParseTraceparent(tp); perr == nil {
			ctx = obs.ContextWithSpanContext(ctx, sc)
		}
		name := "job.run"
		switch {
		case cp != nil:
			name = "job.resume"
		case len(seed) > 0:
			name = "job.extend"
		}
		ctx, span := s.tracer.StartSpan(ctx, name,
			obs.KV("job", jobID), obs.KV("session", sess.id), obs.KV("lane", lane.String()))
		defer span.End()
		jlog := s.log.With("job", jobID)
		if span != nil {
			jlog = jlog.With("trace", span.TraceID().String())
			if cp != nil {
				span.SetAttr("fromStep", cp.Step)
			}
			if params.ExtendFromVersion > 0 {
				span.SetAttr("extendFrom", params.ExtendFromVersion)
			}
		}

		kind := classKind(params.Class)
		est := s.estimatorFor(prov, kind)
		stepStart := time.Now()
		cfg := core.Config{
			Policy:     s.workload.Policy,
			Estimator:  est,
			WDist:      params.WDist,
			WSize:      params.WSize,
			TargetSize: params.TargetSize,
			TargetDist: params.TargetDist,
			MaxSteps:   params.Steps,
			// Checkpoints persist the job span's context (not the original
			// request's) so a resume's spans nest under the run they
			// continue, while still sharing the request's trace ID.
			TraceParent: tp,
			StepObserver: func(ev core.StepEvent) {
				now := time.Now()
				s.tracer.AddSpan(ctx, "merge-step", stepStart, now,
					obs.KV("step", ev.Step), obs.KV("new", ev.New),
					obs.KV("candidates", ev.Candidates), obs.KV("deltaSkips", ev.DeltaSkips),
					obs.KV("score", ev.Score), obs.KV("dist", ev.RDist), obs.KV("size", ev.Size))
				stepStart = now
			},
		}
		if span != nil {
			cfg.TraceParent = span.Context().Traceparent()
		}
		if s.st != nil {
			cfg.CheckpointEvery = s.checkpointEvery
			cfg.CheckpointSink = func(c core.Checkpoint) error {
				cpStart := time.Now()
				if err := s.st.PutCheckpoint(&codec.CheckpointRecord{JobID: jobID, Checkpoint: &c}); err != nil {
					return err
				}
				s.met.checkpoints.Inc()
				s.tracer.AddSpan(ctx, "checkpoint", cpStart, time.Now(), obs.KV("step", c.Step))
				return nil
			}
		}
		summarizer, err := core.New(cfg)
		if err != nil {
			span.SetAttr("error", err)
			return nil, err
		}
		var sum *core.Summary
		if cp == nil && len(seed) > 0 {
			sum, err = summarizer.Extend(ctx, prov, seed)
		} else {
			sum, err = summarizer.Resume(ctx, prov, cp)
		}
		if err != nil {
			span.SetAttr("error", err)
			return nil, err
		}
		span.SetAttr("steps", len(sum.Steps))
		span.SetAttr("stop", sum.StopReason)
		s.mu.Lock()
		sess.summary = sum
		sess.class = kind
		s.mu.Unlock()
		if s.cache != nil && key != nil {
			s.publishToCache(sess, *key, params, sum)
		}
		s.recordSummarize(sum, est)
		jlog.Info("summarized",
			"session", sess.id, "job", jobID, "steps", len(sum.Steps), "stop", sum.StopReason,
			"size", sum.Expr.Size(), "dist", sum.Dist, "dur", sum.Elapsed)
		return sum, nil
	}
}

// onJobTransition is the jobs.Manager hook: it keeps the queue/running
// gauges and latency histogram current, unpins sessions when their jobs
// end, and journals state transitions. One deliberate gap: a job
// interrupted by shutdown (cause ErrShutdown) is NOT journaled as
// terminal — its last persisted state stays queued/running, which is
// exactly what makes the next startup requeue it from its latest
// checkpoint.
func (s *Server) onJobTransition(tr jobs.Transition) {
	id := tr.Job.ID
	var fanout []*session
	s.mu.Lock()
	meta := s.jobMeta[id]
	if tr.To.Terminal() {
		if meta != nil {
			meta.finished = true
			if sess, ok := s.sessions[meta.sessionID]; ok {
				sess.active--
			}
			for _, as := range meta.attached {
				as.active--
			}
			fanout = meta.attached
		}
	}
	s.mu.Unlock()

	// Fan the shared result out to coalesced waiters' sessions.
	if tr.To == jobs.Done && len(fanout) > 0 && meta != nil {
		if sum, ok := tr.Job.Status().Result.(*core.Summary); ok {
			kind := classKind(meta.params.Class)
			s.mu.Lock()
			for _, as := range fanout {
				as.summary = sum
				as.class = kind
			}
			s.mu.Unlock()
		}
	}

	// Every completed run appends a version to the primary session's
	// chain (with or without a store; the chain drives /api/extend).
	if tr.To == jobs.Done && meta != nil {
		if sum, ok := tr.Job.Status().Result.(*core.Summary); ok {
			s.appendVersion(meta, sum)
		}
	}

	lane := tr.Job.Lane().String()
	switch {
	case tr.From == jobs.Queued && tr.To == jobs.Queued:
		s.met.jobsQueued[lane].Inc()
	case tr.From == jobs.Queued && tr.To == jobs.Running:
		s.met.jobsQueued[lane].Dec()
		s.met.jobsRunning[lane].Inc()
	case tr.From == jobs.Queued && tr.To.Terminal():
		s.met.jobsQueued[lane].Dec()
	case tr.From == jobs.Running && tr.To.Terminal():
		s.met.jobsRunning[lane].Dec()
	}
	if tr.To.Terminal() && meta != nil {
		s.releaseJobQuota(meta.tenant)
	}
	if tr.To.Terminal() {
		trace := tr.Job.Trace()
		if tid := traceIDOf(trace); tid != "" {
			s.met.jobDur.ObserveExemplar(tr.Latency.Seconds(), tid)
		} else {
			s.met.jobDur.Observe(tr.Latency.Seconds())
		}
		if c, ok := s.met.jobsFinished[tr.To.String()]; ok {
			c.Inc()
		}
		// SLO and flight recorder: shutdown interruptions are requeues,
		// not failures, so they count neither as bad events nor as
		// capture triggers.
		genuineFailure := tr.To == jobs.Failed && !errors.Is(tr.Cause, jobs.ErrShutdown)
		s.sloJob.Observe(tr.Latency, genuineFailure)
		if genuineFailure {
			var tid obs.TraceID
			if sc, perr := obs.ParseTraceparent(trace); perr == nil {
				tid = sc.TraceID
			}
			if dir, ferr := s.fr.Capture("job-failure", tid); ferr != nil {
				s.log.Error("flight capture failed", "job", id, "err", ferr)
			} else if dir != "" {
				s.log.Info("flight bundle captured", "job", id, "dir", dir)
			}
		}
	}

	if s.st == nil || meta == nil {
		return
	}
	if tr.To.Terminal() && errors.Is(tr.Cause, jobs.ErrShutdown) {
		s.log.Info("job interrupted by shutdown; leaving requeueable", "job", id)
		return
	}
	if tr.To == jobs.Done {
		if sum, ok := tr.Job.Status().Result.(*core.Summary); ok {
			// One summary record per distinct session sharing the job: the
			// primary submitter plus any coalesced waiters.
			sessionIDs := []string{meta.sessionID}
			seen := map[string]bool{meta.sessionID: true}
			for _, as := range fanout {
				if !seen[as.id] {
					seen[as.id] = true
					sessionIDs = append(sessionIDs, as.id)
				}
			}
			for _, sid := range sessionIDs {
				rec := &codec.SummaryRecord{
					SessionID:    sid,
					Class:        meta.params.Class,
					Steps:        codec.StepsFromCore(sum.Steps),
					Dist:         sum.Dist,
					StopReason:   sum.StopReason,
					ExtendedFrom: sum.ExtendedFrom,
				}
				if err := s.st.PutSummary(rec); err != nil {
					s.log.Error("journaling summary failed", "job", id, "session", sid, "err", err)
				}
			}
		}
	}
	rec := &codec.JobRecord{
		ID:          id,
		SessionID:   meta.sessionID,
		State:       tr.To.String(),
		Params:      meta.params,
		SubmittedMS: meta.submittedMS,
		Trace:       tr.Job.Trace(),
		Tenant:      meta.tenant,
		Lane:        lane,
	}
	if tr.Err != nil {
		rec.Error = tr.Err.Error()
	}
	if err := s.st.PutJob(rec); err != nil {
		s.log.Error("journaling job state failed", "job", id, "state", rec.State, "err", err)
	}
}

// jobResponse is the API view of a job.
type jobResponse struct {
	ID          string             `json:"id"`
	SessionID   string             `json:"sessionId,omitempty"`
	State       string             `json:"state"`
	Error       string             `json:"error,omitempty"`
	SubmittedAt string             `json:"submittedAt,omitempty"`
	StartedAt   string             `json:"startedAt,omitempty"`
	FinishedAt  string             `json:"finishedAt,omitempty"`
	Result      *summarizeResponse `json:"result,omitempty"`
	// Trace is the hex trace ID the job's spans are recorded under
	// (look it up via GET /api/traces/{id}); empty for untraced jobs.
	Trace string `json:"trace,omitempty"`
	// Cached marks a submission answered from the summary cache without
	// running a job.
	Cached bool `json:"cached,omitempty"`
}

func rfc3339OrEmpty(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}

func (s *Server) jobResponseFor(job *jobs.Job) jobResponse {
	st := job.Status()
	s.mu.Lock()
	meta := s.jobMeta[st.ID]
	s.mu.Unlock()
	resp := jobResponse{
		ID:          st.ID,
		State:       st.State.String(),
		SubmittedAt: rfc3339OrEmpty(st.SubmittedAt),
		StartedAt:   rfc3339OrEmpty(st.StartedAt),
		FinishedAt:  rfc3339OrEmpty(st.FinishedAt),
		Trace:       traceIDOf(job.Trace()),
	}
	if meta != nil {
		resp.SessionID = meta.sessionID
	}
	if st.Err != nil {
		resp.Error = st.Err.Error()
	}
	if st.State == jobs.Done {
		if sum, ok := st.Result.(*core.Summary); ok {
			r := s.summaryResponse(sum)
			resp.Result = &r
		}
	}
	return resp
}

// handleJobSubmit implements POST /api/jobs: enqueue a summarization and
// return immediately with the job id. A cache hit synthesizes an
// already-done job carrying the cached result; a submission identical
// to an in-flight job returns that job's id (the duplicate attaches to
// it rather than queueing a second run).
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req summarizeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeErr(w, http.StatusBadRequest, "bad request: %v", err)
		return
	}
	out, status, err := s.submitSummarize(r.Context(), &req, 0, jobs.LaneBulk)
	if err != nil {
		writeReject(w, status, err)
		return
	}
	if out.cacheState != "" {
		w.Header().Set("X-Prox-Cache", out.cacheState)
	}
	if out.cached != nil {
		writeJSON(w, http.StatusOK, s.cachedJobResponse(out))
		return
	}
	writeJSON(w, http.StatusAccepted, s.jobResponseFor(out.job))
}

// cachedJobResponse registers a synthetic, already-done job for a
// cache hit, so the async API keeps its invariant that every accepted
// submission has a pollable job id.
func (s *Server) cachedJobResponse(out *summarizeOutcome) jobResponse {
	now := time.Now()
	s.mu.Lock()
	s.jobSeq++
	id := "j" + strconv.Itoa(s.jobSeq)
	rec := &codec.JobRecord{
		ID:          id,
		SessionID:   out.sess.id,
		State:       store.JobStateDone,
		Params:      out.params,
		SubmittedMS: now.UnixMilli(),
		Tenant:      out.sess.tenant,
	}
	s.finished[id] = rec
	s.mu.Unlock()
	if s.st != nil {
		if err := s.st.PutJob(rec); err != nil {
			s.log.Error("journaling cached job failed", "job", id, "err", err)
		}
	}
	sr := s.summaryResponse(out.cached)
	sr.Cached = true
	return jobResponse{
		ID:          id,
		SessionID:   out.sess.id,
		State:       store.JobStateDone,
		SubmittedAt: rfc3339OrEmpty(now),
		FinishedAt:  rfc3339OrEmpty(now),
		Result:      &sr,
		Cached:      true,
	}
}

// jobNotFound renders the exact 404 an unknown job id produces, so a
// cross-tenant probe cannot distinguish "not yours" from "not there".
func jobNotFound(w http.ResponseWriter, id string) {
	writeErr(w, http.StatusNotFound, "%v", fmt.Errorf("%w: %s", jobs.ErrNotFound, id))
}

// handleJobGet implements GET /api/jobs/{id}. Jobs that finished before
// a restart are answered from their journaled record. Ownership mirrors
// sessionFor: another tenant's job is indistinguishable from a missing
// one.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	t := tenantFrom(r.Context())
	job, err := s.jm.Get(id)
	if err != nil {
		s.mu.Lock()
		rec := s.finished[id]
		s.mu.Unlock()
		if rec == nil || !ownsJob(t, rec.Tenant) {
			jobNotFound(w, id)
			return
		}
		writeJSON(w, http.StatusOK, jobResponse{
			ID: rec.ID, SessionID: rec.SessionID, State: rec.State, Error: rec.Error,
			SubmittedAt: rfc3339OrEmpty(time.UnixMilli(rec.SubmittedMS)),
			Trace:       traceIDOf(rec.Trace),
		})
		return
	}
	s.mu.Lock()
	meta := s.jobMeta[id]
	s.mu.Unlock()
	if meta != nil && !ownsJob(t, meta.tenant) {
		jobNotFound(w, id)
		return
	}
	writeJSON(w, http.StatusOK, s.jobResponseFor(job))
}

// handleJobCancel implements POST /api/jobs/{id}/cancel. Cancelation
// is per-waiter: on a job shared by coalesced identical submissions,
// each cancel detaches one waiter, and only the last one actually
// cancels the computation.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	// Ownership is checked before Leave: detaching a waiter (let alone
	// canceling the run) must not be possible against another tenant's
	// job, and the refusal must look exactly like an unknown id.
	s.mu.Lock()
	meta := s.jobMeta[id]
	s.mu.Unlock()
	if meta != nil && !ownsJob(tenantFrom(r.Context()), meta.tenant) {
		jobNotFound(w, id)
		return
	}
	if _, err := s.jm.Leave(id); err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	job, err := s.jm.Get(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, s.jobResponseFor(job))
}

// writeJobOutcome renders a terminal job status for submit-and-wait.
func (s *Server) writeJobOutcome(w http.ResponseWriter, st jobs.Status) {
	switch st.State {
	case jobs.Done:
		if sum, ok := st.Result.(*core.Summary); ok {
			writeJSON(w, http.StatusOK, s.summaryResponse(sum))
			return
		}
		writeErr(w, http.StatusInternalServerError, "job %s finished without a summary", st.ID)
	case jobs.Canceled:
		writeErr(w, http.StatusConflict, "job %s was canceled", st.ID)
	default:
		status := http.StatusInternalServerError
		if errors.Is(st.Cause, context.DeadlineExceeded) {
			status = http.StatusGatewayTimeout
		}
		writeErr(w, status, "job %s failed: %v", st.ID, st.Err)
	}
}

// restoreFromStore replays the store's state into the server: sessions
// (with their custom universe entries, replayed ingest batches,
// summary version chains and completed summaries) come back under
// their original ids, and jobs whose last journaled state is queued or
// running are resubmitted, resuming from their latest checkpoint.
func (s *Server) restoreFromStore() error {
	state := s.st.State()
	for _, rec := range state.Sessions {
		for _, e := range rec.Universe {
			s.workload.Universe.Add(provenance.Annotation(e.Ann), e.Table, provenance.Attrs(e.Attrs))
		}
		sess := &session{id: rec.ID, prov: rec.Prov, universe: rec.Universe, tenant: rec.Tenant}
		// Re-occupy the owner's session quota; ForceAcquire because a
		// restart must never fail to restore journaled state over a
		// since-shrunk quota.
		if s.tenants != nil && rec.Tenant != "" {
			if t, ok := s.tenants.Get(rec.Tenant); ok {
				t.ForceAcquireSession()
			}
		}
		// Replay the session's ingest log in append order: the same
		// Append calls the live server made rebuild the same expression
		// snapshots and plan state.
		for _, ing := range state.Ingests[rec.ID] {
			for _, e := range ing.Universe {
				s.workload.Universe.Add(provenance.Annotation(e.Ann), e.Table, provenance.Attrs(e.Attrs))
			}
			if sess.stream == nil {
				sess.stream = stream.NewSession(sess.prov)
			}
			next, patched, err := sess.stream.Append(ing.Added.Tensors)
			if err != nil {
				return fmt.Errorf("server: replaying ingest for session %s: %w", rec.ID, err)
			}
			sess.prov = next
			s.recordIngest(len(ing.Added.Tensors), patched)
		}
		// Version chains come back before jobs are requeued below: a
		// requeued extend job rebuilds its seed from its parent version.
		sess.versions = append([]*codec.SummaryVersionRecord(nil), state.Versions[rec.ID]...)
		if sumRec, ok := state.Summaries[rec.ID]; ok {
			sum, err := s.rebuildSummary(sess, sumRec)
			if err != nil {
				return fmt.Errorf("server: restoring session %s summary: %w", rec.ID, err)
			}
			sess.summary = sum
			sess.class = classKind(sumRec.Class)
		}
		s.sessions[rec.ID] = sess
		s.order = append(s.order, rec.ID)
		if n, err := strconv.Atoi(rec.ID); err == nil && n > s.nextID {
			s.nextID = n
		}
	}
	s.met.sessions.Set(float64(len(s.sessions)))

	// Warm-start the summary cache from its journaled entries (in
	// first-append order, so replayed LRU displacement keeps the most
	// recently journaled entries when bounds shrank across the restart).
	if s.cache != nil {
		for _, rec := range state.CacheEntries {
			k, err := summarycache.ParseKey(rec.Key)
			if err != nil {
				s.log.Error("dropping unparseable cache key from store", "key", rec.Key, "err", err)
				continue
			}
			if !s.cache.Put(k, rec) {
				s.met.cacheRejected.Inc()
				s.log.Warn("cache rejected journaled entry on restore", "key", rec.Key)
			} else if s.tenants != nil && rec.Tenant != "" {
				// Journaled entries come back regardless of what the
				// quota says today (mirrors ForceAcquireJob/Session);
				// eviction returns the bytes through onCacheEvict.
				if t, ok := s.tenants.Get(rec.Tenant); ok {
					t.ForceAcquireCacheBytes(cacheRecSize(rec))
				}
			}
		}
		s.updateCacheGauges()
	}

	var requeue []*codec.JobRecord
	for _, rec := range state.Jobs {
		if n, err := strconv.Atoi(strings.TrimPrefix(rec.ID, "j")); err == nil && n > s.jobSeq {
			s.jobSeq = n
		}
		if store.TerminalJobState(rec.State) {
			s.finished[rec.ID] = rec
			continue
		}
		requeue = append(requeue, rec)
	}
	for _, rec := range requeue {
		sess, ok := s.sessions[rec.SessionID]
		if !ok {
			s.log.Error("interrupted job references unknown session; dropping", "job", rec.ID, "session", rec.SessionID)
			continue
		}
		var cp *core.Checkpoint
		if cpRec, ok := state.Checkpoints[rec.ID]; ok {
			cp = cpRec.Checkpoint
		}
		step := 0
		if cp != nil {
			step = cp.Step
		}
		var seed provenance.Groups
		if rec.Params.ExtendFromVersion > 0 {
			var err error
			seed, err = s.seedForVersion(sess, rec.Params.ExtendFromVersion)
			if err != nil {
				s.log.Error("interrupted extend job references unknown version; dropping",
					"job", rec.ID, "session", rec.SessionID, "version", rec.Params.ExtendFromVersion, "err", err)
				continue
			}
		}
		var key *summarycache.Key
		if s.cache != nil {
			k := s.cacheKeyFor(sess, rec.Params, seed)
			key = &k
		}
		// Resume under the interrupted run's trace: prefer the
		// checkpoint's traceparent (the pre-kill job span, so resume
		// spans nest under it) and fall back to the traceparent journaled
		// at submission.
		trace := rec.Trace
		if cp != nil && cp.TraceParent != "" {
			trace = cp.TraceParent
		}
		// Requeued jobs force-acquire their owner's quota slot: a restart
		// must not drop journaled work because the tenant is at its limit.
		if s.tenants != nil && rec.Tenant != "" {
			if t, ok := s.tenants.Get(rec.Tenant); ok {
				t.ForceAcquireJob()
			}
		}
		job, coalesced, err := s.submitJob(sess, rec.ID, trace, rec.Tenant, jobs.ParseLane(rec.Lane), rec.Params, cp, key, seed)
		if err != nil {
			s.releaseJobQuota(rec.Tenant)
			return fmt.Errorf("server: requeueing interrupted job %s: %w", rec.ID, err)
		}
		if coalesced {
			// Two interrupted jobs with the same content address: this one
			// rides on the first's run. Retire its journaled record so it is
			// not requeued forever, and hand back the quota slot it never used.
			s.releaseJobQuota(rec.Tenant)
			done := &codec.JobRecord{
				ID:          rec.ID,
				SessionID:   rec.SessionID,
				State:       store.JobStateCanceled,
				Error:       "coalesced into " + job.ID,
				Params:      rec.Params,
				SubmittedMS: rec.SubmittedMS,
			}
			s.finished[rec.ID] = done
			if err := s.st.PutJob(done); err != nil {
				s.log.Error("journaling coalesced requeue failed", "job", rec.ID, "err", err)
			}
			s.log.Info("requeued job coalesced onto identical in-flight job", "job", rec.ID, "into", job.ID)
			continue
		}
		s.log.Info("requeued interrupted job", "job", rec.ID, "session", rec.SessionID, "fromStep", step)
	}
	return nil
}

// rebuildSummary reconstructs a core.Summary from its journaled merge
// trace by replaying the trace over the session's provenance. Summary
// annotations are re-registered in the universe directly under their
// recorded names (not via Policy.MergeName, whose #N disambiguation
// depends on cross-session registration order the journal does not
// preserve).
func (s *Server) rebuildSummary(sess *session, rec *codec.SummaryRecord) (*core.Summary, error) {
	steps, err := codec.StepsToCore(rec.Steps)
	if err != nil {
		return nil, err
	}
	u := s.workload.Universe
	var expr provenance.Expression = sess.prov
	cum := provenance.NewMapping()
	for _, st := range steps {
		if u.Table(st.New) == "" {
			u.Add(st.New, u.Table(st.Members[0]), nil)
		}
		m := provenance.MergeMapping(st.New, st.Members...)
		expr = expr.Apply(m)
		cum = cum.Compose(m)
	}
	return &core.Summary{
		Original:   sess.prov,
		Expr:       expr,
		Mapping:    cum,
		Groups:     provenance.GroupsOf(sess.prov.Annotations(), cum),
		Steps:      steps,
		Dist:       rec.Dist,
		StopReason: rec.StopReason,
	}, nil
}

// storeObserver adapts store events to the metrics registry.
type storeObserver struct {
	appends   *obs.Counter
	bytes     *obs.Counter
	fsyncs    *obs.Counter
	fsyncDur  *obs.Histogram
	truncated *obs.Counter
}

// fsyncBuckets spans the fsync latency range from page-cache-absorbed
// (~50µs) to a seriously stalled disk (1s).
var fsyncBuckets = []float64{0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 1}

// NewStoreObserver returns a store.Observer publishing append/fsync/
// truncation counters and the fsync latency histogram to reg (pass the
// same registry as WithRegistry so everything lands on one /metrics
// page).
func NewStoreObserver(reg *obs.Registry) store.Observer {
	return &storeObserver{
		appends:   reg.Counter("prox_store_appends_total", "Records appended to the durability log.", nil),
		bytes:     reg.Counter("prox_store_append_bytes_total", "Framed bytes appended to the durability log.", nil),
		fsyncs:    reg.Counter("prox_store_fsyncs_total", "fsync calls issued by the durability store.", nil),
		fsyncDur:  reg.Histogram("prox_store_fsync_seconds", "Latency of fsync calls issued by the durability store.", fsyncBuckets, nil),
		truncated: reg.Counter("prox_store_truncated_bytes_total", "Torn-tail bytes discarded when opening the log.", nil),
	}
}

func (o *storeObserver) Appended(n int) {
	o.appends.Inc()
	o.bytes.Add(float64(n))
}
func (o *storeObserver) Synced(d time.Duration) {
	o.fsyncs.Inc()
	o.fsyncDur.Observe(d.Seconds())
}
func (o *storeObserver) Truncated(n int64) { o.truncated.Add(float64(n)) }
