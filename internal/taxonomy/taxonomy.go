// Package taxonomy implements the taxonomies of Sec. 3.2: rooted trees of
// concepts (a YAGO/WordNet-style subClassOf hierarchy) used to (a)
// constrain which annotations may be grouped together (common-ancestor
// constraint), (b) break ties between candidate mappings via taxonomy
// distance (MAX or SUM of Wu–Palmer distances), and (c) restrict
// valuation classes to taxonomy-consistent valuations.
package taxonomy

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/provenance"
)

// Tree is a rooted concept taxonomy. Node names double as provenance
// annotations so that provenance over taxonomy concepts (e.g. Wikipedia
// page summaries named by WordNet concepts) needs no translation layer.
type Tree struct {
	root     provenance.Annotation
	parent   map[provenance.Annotation]provenance.Annotation
	children map[provenance.Annotation][]provenance.Annotation
	depth    map[provenance.Annotation]int
}

// New creates a taxonomy with the given root concept.
func New(root provenance.Annotation) *Tree {
	t := &Tree{
		root:     root,
		parent:   make(map[provenance.Annotation]provenance.Annotation),
		children: make(map[provenance.Annotation][]provenance.Annotation),
		depth:    map[provenance.Annotation]int{root: 0},
	}
	return t
}

// Root returns the root concept.
func (t *Tree) Root() provenance.Annotation { return t.root }

// Add inserts concept under parent. It returns an error if the parent is
// unknown or the concept already exists.
func (t *Tree) Add(concept, parent provenance.Annotation) error {
	if _, ok := t.depth[parent]; !ok {
		return fmt.Errorf("taxonomy: unknown parent %q", parent)
	}
	if _, ok := t.depth[concept]; ok {
		return fmt.Errorf("taxonomy: concept %q already present", concept)
	}
	t.parent[concept] = parent
	t.children[parent] = append(t.children[parent], concept)
	t.depth[concept] = t.depth[parent] + 1
	return nil
}

// MustAdd is Add that panics on error, for static taxonomy construction.
func (t *Tree) MustAdd(concept, parent provenance.Annotation) {
	if err := t.Add(concept, parent); err != nil {
		panic(err)
	}
}

// Contains reports whether the concept is in the taxonomy.
func (t *Tree) Contains(c provenance.Annotation) bool {
	_, ok := t.depth[c]
	return ok
}

// Depth is the distance from the root (root has depth 0); -1 if unknown.
func (t *Tree) Depth(c provenance.Annotation) int {
	d, ok := t.depth[c]
	if !ok {
		return -1
	}
	return d
}

// Parent returns the parent of c and whether c has one (the root and
// unknown concepts do not).
func (t *Tree) Parent(c provenance.Annotation) (provenance.Annotation, bool) {
	p, ok := t.parent[c]
	return p, ok
}

// Children returns the direct children of c in insertion order.
func (t *Tree) Children(c provenance.Annotation) []provenance.Annotation {
	return append([]provenance.Annotation(nil), t.children[c]...)
}

// Concepts returns all concepts, sorted.
func (t *Tree) Concepts() []provenance.Annotation {
	out := make([]provenance.Annotation, 0, len(t.depth))
	for c := range t.depth {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Leaves returns all concepts without children, sorted.
func (t *Tree) Leaves() []provenance.Annotation {
	var out []provenance.Annotation
	for c := range t.depth {
		if len(t.children[c]) == 0 {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Ancestors returns the path from c (inclusive) to the root (inclusive).
func (t *Tree) Ancestors(c provenance.Annotation) []provenance.Annotation {
	if !t.Contains(c) {
		return nil
	}
	var out []provenance.Annotation
	for {
		out = append(out, c)
		p, ok := t.parent[c]
		if !ok {
			return out
		}
		c = p
	}
}

// IsAncestor reports whether anc is an ancestor of c (or equal to it).
func (t *Tree) IsAncestor(anc, c provenance.Annotation) bool {
	if !t.Contains(anc) || !t.Contains(c) {
		return false
	}
	for {
		if c == anc {
			return true
		}
		p, ok := t.parent[c]
		if !ok {
			return false
		}
		c = p
	}
}

// LCA returns the lowest common ancestor of a and b, and false if either
// concept is unknown.
func (t *Tree) LCA(a, b provenance.Annotation) (provenance.Annotation, bool) {
	if !t.Contains(a) || !t.Contains(b) {
		return "", false
	}
	seen := make(map[provenance.Annotation]bool)
	for _, x := range t.Ancestors(a) {
		seen[x] = true
	}
	for _, x := range t.Ancestors(b) {
		if seen[x] {
			return x, true
		}
	}
	return t.root, true
}

// HaveCommonAncestor reports whether a non-root concept subsumes both a
// and b — the paper's semantic constraint "all annotations grouped
// together share a common ancestor". Sharing only the root is not
// considered meaningful.
func (t *Tree) HaveCommonAncestor(a, b provenance.Annotation) bool {
	lca, ok := t.LCA(a, b)
	return ok && lca != t.root
}

// Descendants returns every concept subsumed by c, including c itself.
func (t *Tree) Descendants(c provenance.Annotation) []provenance.Annotation {
	if !t.Contains(c) {
		return nil
	}
	var out []provenance.Annotation
	stack := []provenance.Annotation{c}
	for len(stack) > 0 {
		x := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		out = append(out, x)
		stack = append(stack, t.children[x]...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// WuPalmer is the Wu–Palmer semantic relatedness of two concepts:
// 2·depth(lca) / (depth(a) + depth(b)), in [0,1] with 1 for identical
// concepts (when not at the root). Unknown concepts score 0.
func (t *Tree) WuPalmer(a, b provenance.Annotation) float64 {
	lca, ok := t.LCA(a, b)
	if !ok {
		return 0
	}
	da, db, dl := t.depth[a], t.depth[b], t.depth[lca]
	if da+db == 0 {
		return 1 // both at root
	}
	return 2 * float64(dl) / float64(da+db)
}

// Distance is the Wu–Palmer semantic distance 1 − WuPalmer(a,b).
func (t *Tree) Distance(a, b provenance.Annotation) float64 {
	return 1 - t.WuPalmer(a, b)
}

// MappingDistance scores a candidate merge: the distance of each member
// from the summary concept it is mapped to, folded with MAX (useSum
// false) or SUM (useSum true). Lower is better ("mapping users to
// 'Guitarist' is preferable to mapping them to 'Person'"). Members or
// targets outside the taxonomy contribute the maximal distance 1.
func (t *Tree) MappingDistance(target provenance.Annotation, members []provenance.Annotation, useSum bool) float64 {
	total, max := 0.0, 0.0
	for _, m := range members {
		d := 1.0
		if t.Contains(m) && t.Contains(target) {
			d = t.Distance(m, target)
		}
		total += d
		if d > max {
			max = d
		}
	}
	if useSum {
		return total
	}
	return max
}

// Generate builds a deterministic synthetic WordNet-style taxonomy with
// the given branching factor and depth, rooted at root. Concept names
// encode their position ("root.2.0.1"). It is the stand-in for the YAGO
// taxonomy (see DESIGN.md substitutions).
func Generate(root provenance.Annotation, branching, depth int, r *rand.Rand) *Tree {
	t := New(root)
	var grow func(parent provenance.Annotation, level int)
	grow = func(parent provenance.Annotation, level int) {
		if level >= depth {
			return
		}
		n := branching
		if r != nil && branching > 1 {
			n = 1 + r.Intn(branching) // ragged fan-out
		}
		for i := 0; i < n; i++ {
			child := provenance.Annotation(fmt.Sprintf("%s.%d", parent, i))
			t.MustAdd(child, parent)
			grow(child, level+1)
		}
	}
	grow(root, 0)
	return t
}
