// Command prox-server runs the PROX web system of Ch. 7: the selection,
// summarization and provisioning services with the embedded web UI, over
// a synthetic MovieLens workload. The server exposes Prometheus metrics
// on /metrics, optionally the net/http/pprof profiling handlers on
// /debug/pprof (behind -pprof), and drains gracefully on SIGINT/SIGTERM.
//
// Usage:
//
//	prox-server [-addr :8080] [-users 24] [-movies 8] [-seed 1]
//	            [-max-sessions 1024] [-log-level info] [-pprof]
//	            [-shutdown-timeout 10s]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/datasets"
	"repro/internal/obs"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	users := flag.Int("users", 24, "number of MovieLens users")
	movies := flag.Int("movies", 8, "number of MovieLens movies")
	seed := flag.Int64("seed", 1, "dataset generation seed")
	maxSessions := flag.Int("max-sessions", server.DefaultMaxSessions, "in-memory session cap (oldest evicted first)")
	logLevel := flag.String("log-level", "info", "log level: debug | info | warn | error")
	pprofOn := flag.Bool("pprof", false, "expose net/http/pprof handlers on /debug/pprof")
	shutdownTimeout := flag.Duration("shutdown-timeout", 10*time.Second, "graceful shutdown drain budget")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "prox-server: %v\n", err)
		os.Exit(2)
	}
	log := obs.NewLogger(os.Stderr, level)

	cfg := datasets.DefaultMovieLensConfig()
	cfg.Users = *users
	cfg.Movies = *movies
	w := datasets.MovieLens(cfg, rand.New(rand.NewSource(*seed)))

	s := server.New(w,
		server.WithLogger(log),
		server.WithMaxSessions(*maxSessions),
	)

	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		log.Info("pprof enabled", "path", "/debug/pprof/")
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      60 * time.Second,
		IdleTimeout:       120 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Info("server listening",
		"addr", *addr, "users", *users, "movies", *movies,
		"provenance_size", w.Prov.Size(), "max_sessions", *maxSessions)

	select {
	case err := <-errc:
		log.Error("server failed", "err", err)
		os.Exit(1)
	case <-ctx.Done():
		stop() // restore default signal behavior: a second signal kills
		log.Info("shutdown signal received", "drain_budget", *shutdownTimeout)
		shutCtx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
		defer cancel()
		start := time.Now()
		if err := srv.Shutdown(shutCtx); err != nil {
			log.Warn("drain incomplete, closing", "err", err, "after", time.Since(start))
			_ = srv.Close()
			os.Exit(1)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Error("server error during drain", "err", err)
			os.Exit(1)
		}
		log.Info("drained cleanly", "after", time.Since(start))
	}
}
