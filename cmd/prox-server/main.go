// Command prox-server runs the PROX web system of Ch. 7: the selection,
// summarization and provisioning services with the embedded web UI, over
// a synthetic MovieLens workload.
//
// Usage:
//
//	prox-server [-addr :8080] [-users 24] [-movies 8] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"net/http"

	"repro/internal/datasets"
	"repro/internal/server"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	users := flag.Int("users", 24, "number of MovieLens users")
	movies := flag.Int("movies", 8, "number of MovieLens movies")
	seed := flag.Int64("seed", 1, "dataset generation seed")
	flag.Parse()

	cfg := datasets.DefaultMovieLensConfig()
	cfg.Users = *users
	cfg.Movies = *movies
	w := datasets.MovieLens(cfg, rand.New(rand.NewSource(*seed)))

	s := server.New(w)
	fmt.Printf("PROX serving %d users / %d movies (provenance size %d) on %s\n",
		*users, *movies, w.Prov.Size(), *addr)
	log.Fatal(http.ListenAndServe(*addr, s.Handler()))
}
