// Package krel is a small in-memory K-relation engine: relations whose
// tuples are annotated with provenance polynomials in N[Ann], with the
// positive relational-algebra operators of Green et al. [21] (selection,
// projection, natural join, union) and the aggregation construction of
// Amsterdamer et al. [7] that pairs aggregated values with provenance
// tensors. It is the substrate on which the Ch. 2 movie-rating workflow
// runs, producing exactly the provenance expressions PROX summarizes.
//
// Provenance propagation follows the semiring semantics:
//
//	selection  keeps tuple annotations,
//	projection combines duplicate result tuples with +,
//	join       multiplies the joined tuples' annotations with ·,
//	union      combines with +,
//	aggregation pairs each tuple's annotation with its value as a tensor.
package krel

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/provenance"
)

// Row is a tuple with its provenance annotation.
type Row struct {
	Values []string
	Prov   provenance.Expr
}

// Relation is a K-relation: a schema, rows, and per-row provenance.
type Relation struct {
	Name   string
	Cols   []string
	Rows   []Row
	colIdx map[string]int
}

// NewRelation creates an empty relation with the given schema.
func NewRelation(name string, cols ...string) *Relation {
	r := &Relation{Name: name, Cols: append([]string(nil), cols...)}
	r.buildIndex()
	return r
}

func (r *Relation) buildIndex() {
	r.colIdx = make(map[string]int, len(r.Cols))
	for i, c := range r.Cols {
		r.colIdx[c] = i
	}
}

// Col returns the index of column name, or -1.
func (r *Relation) Col(name string) int {
	if i, ok := r.colIdx[name]; ok {
		return i
	}
	return -1
}

// Insert appends a tuple annotated with ann (a base annotation). Values
// must match the schema arity.
func (r *Relation) Insert(ann provenance.Annotation, values ...string) error {
	return r.InsertExpr(provenance.V(ann), values...)
}

// InsertExpr appends a tuple annotated with an arbitrary polynomial.
func (r *Relation) InsertExpr(prov provenance.Expr, values ...string) error {
	if len(values) != len(r.Cols) {
		return fmt.Errorf("krel: %s expects %d values, got %d", r.Name, len(r.Cols), len(values))
	}
	r.Rows = append(r.Rows, Row{Values: append([]string(nil), values...), Prov: prov})
	return nil
}

// MustInsert is Insert that panics on arity errors (static data).
func (r *Relation) MustInsert(ann provenance.Annotation, values ...string) {
	if err := r.Insert(ann, values...); err != nil {
		panic(err)
	}
}

// Get returns the value of column col in row i.
func (r *Relation) Get(i int, col string) string {
	idx := r.Col(col)
	if idx < 0 {
		return ""
	}
	return r.Rows[i].Values[idx]
}

// Len is the number of tuples.
func (r *Relation) Len() int { return len(r.Rows) }

// Pred is a tuple predicate used by Select.
type Pred func(get func(col string) string) bool

// Select returns the sub-relation satisfying pred; annotations are
// preserved.
func (r *Relation) Select(pred Pred) *Relation {
	out := NewRelation(r.Name+"_sel", r.Cols...)
	for _, row := range r.Rows {
		rowCopy := row
		get := func(col string) string {
			if i := r.Col(col); i >= 0 {
				return rowCopy.Values[i]
			}
			return ""
		}
		if pred(get) {
			out.Rows = append(out.Rows, row)
		}
	}
	return out
}

// Eq builds a predicate matching col == value.
func Eq(col, value string) Pred {
	return func(get func(string) string) bool { return get(col) == value }
}

// NumGT builds a predicate matching numeric col > bound; non-numeric
// values never match.
func NumGT(col string, bound float64) Pred {
	return func(get func(string) string) bool {
		v, err := strconv.ParseFloat(get(col), 64)
		return err == nil && v > bound
	}
}

// And conjoins predicates.
func And(ps ...Pred) Pred {
	return func(get func(string) string) bool {
		for _, p := range ps {
			if !p(get) {
				return false
			}
		}
		return true
	}
}

// Project returns the relation restricted to cols; result tuples that
// become equal are merged, summing their annotations (the + of
// alternative derivations).
func (r *Relation) Project(cols ...string) (*Relation, error) {
	idx := make([]int, len(cols))
	for i, c := range cols {
		j := r.Col(c)
		if j < 0 {
			return nil, fmt.Errorf("krel: %s has no column %q", r.Name, c)
		}
		idx[i] = j
	}
	out := NewRelation(r.Name+"_proj", cols...)
	seen := make(map[string]int)
	for _, row := range r.Rows {
		vals := make([]string, len(idx))
		for i, j := range idx {
			vals[i] = row.Values[j]
		}
		key := strings.Join(vals, "\x00")
		if at, ok := seen[key]; ok {
			out.Rows[at].Prov = provenance.SimplifyExpr(provenance.Sum{
				Terms: []provenance.Expr{out.Rows[at].Prov, row.Prov},
			})
			continue
		}
		seen[key] = len(out.Rows)
		out.Rows = append(out.Rows, Row{Values: vals, Prov: row.Prov})
	}
	return out, nil
}

// Join computes the natural join of r and s on their shared columns;
// joined tuples multiply their annotations. The result schema is r's
// columns followed by s's non-shared columns.
func (r *Relation) Join(s *Relation) *Relation {
	var shared []string
	for _, c := range r.Cols {
		if s.Col(c) >= 0 {
			shared = append(shared, c)
		}
	}
	var extra []string
	for _, c := range s.Cols {
		if r.Col(c) < 0 {
			extra = append(extra, c)
		}
	}
	out := NewRelation(r.Name+"_"+s.Name, append(append([]string(nil), r.Cols...), extra...)...)

	// hash join on the shared columns
	key := func(rel *Relation, row Row) string {
		parts := make([]string, len(shared))
		for i, c := range shared {
			parts[i] = row.Values[rel.Col(c)]
		}
		return strings.Join(parts, "\x00")
	}
	index := make(map[string][]Row)
	for _, row := range s.Rows {
		index[key(s, row)] = append(index[key(s, row)], row)
	}
	for _, row := range r.Rows {
		for _, match := range index[key(r, row)] {
			vals := append([]string(nil), row.Values...)
			for _, c := range extra {
				vals = append(vals, match.Values[s.Col(c)])
			}
			prov := provenance.SimplifyExpr(provenance.Prod{
				Factors: []provenance.Expr{row.Prov, match.Prov},
			})
			out.Rows = append(out.Rows, Row{Values: vals, Prov: prov})
		}
	}
	return out
}

// Union appends the tuples of s (same schema required); duplicate tuples
// are merged by summing annotations.
func (r *Relation) Union(s *Relation) (*Relation, error) {
	if len(r.Cols) != len(s.Cols) {
		return nil, fmt.Errorf("krel: union schema mismatch %v vs %v", r.Cols, s.Cols)
	}
	for i := range r.Cols {
		if r.Cols[i] != s.Cols[i] {
			return nil, fmt.Errorf("krel: union schema mismatch %v vs %v", r.Cols, s.Cols)
		}
	}
	out := NewRelation(r.Name+"_u_"+s.Name, r.Cols...)
	seen := make(map[string]int)
	add := func(row Row) {
		key := strings.Join(row.Values, "\x00")
		if at, ok := seen[key]; ok {
			out.Rows[at].Prov = provenance.SimplifyExpr(provenance.Sum{
				Terms: []provenance.Expr{out.Rows[at].Prov, row.Prov},
			})
			return
		}
		seen[key] = len(out.Rows)
		out.Rows = append(out.Rows, row)
	}
	for _, row := range r.Rows {
		add(row)
	}
	for _, row := range s.Rows {
		add(row)
	}
	return out, nil
}

// Guard multiplies each tuple's annotation by a comparison token
// [guardProv ⊗ value OP bound] built from per-tuple data — the nested
// aggregate/conditional construction of [7, 17]. For each tuple, build
// returns the guard's inner polynomial and paired value; tuples for which
// build returns ok=false are left unguarded.
func (r *Relation) Guard(op provenance.CmpOp, bound float64, build func(get func(col string) string, prov provenance.Expr) (inner provenance.Expr, value float64, ok bool)) *Relation {
	out := NewRelation(r.Name+"_grd", r.Cols...)
	for _, row := range r.Rows {
		rowCopy := row
		get := func(col string) string {
			if i := r.Col(col); i >= 0 {
				return rowCopy.Values[i]
			}
			return ""
		}
		inner, value, ok := build(get, row.Prov)
		prov := row.Prov
		if ok {
			prov = provenance.SimplifyExpr(provenance.Prod{Factors: []provenance.Expr{
				row.Prov,
				provenance.Cmp{Inner: inner, Value: value, Op: op, Bound: bound},
			}})
		}
		out.Rows = append(out.Rows, Row{Values: row.Values, Prov: prov})
	}
	return out
}

// Aggregate builds the provenance-aware aggregation of the relation: one
// tensor per tuple pairing the tuple's annotation with the numeric value
// of valueCol, grouped by the annotation named in groupCol (the paper's
// ⊕ formal sum with per-object vector semantics). Tuples with
// non-numeric values are skipped with an error.
func (r *Relation) Aggregate(kind provenance.AggKind, valueCol, groupCol string) (*provenance.Agg, error) {
	vi := r.Col(valueCol)
	if vi < 0 {
		return nil, fmt.Errorf("krel: %s has no column %q", r.Name, valueCol)
	}
	gi := -1
	if groupCol != "" {
		gi = r.Col(groupCol)
		if gi < 0 {
			return nil, fmt.Errorf("krel: %s has no column %q", r.Name, groupCol)
		}
	}
	tensors := make([]provenance.Tensor, 0, len(r.Rows))
	for i, row := range r.Rows {
		v, err := strconv.ParseFloat(row.Values[vi], 64)
		if err != nil {
			return nil, fmt.Errorf("krel: %s row %d: non-numeric %s=%q", r.Name, i, valueCol, row.Values[vi])
		}
		group := provenance.Annotation("")
		if gi >= 0 {
			group = provenance.Annotation(row.Values[gi])
		}
		tensors = append(tensors, provenance.Tensor{Prov: row.Prov, Value: v, Count: 1, Group: group})
	}
	return provenance.NewAgg(kind, tensors...), nil
}

// String renders the relation as an aligned table with provenance.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s)\n", r.Name, strings.Join(r.Cols, ", "))
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %s  @ %s\n", strings.Join(row.Values, " | "), row.Prov)
	}
	return b.String()
}

// SortRows orders tuples by their values, for deterministic output.
func (r *Relation) SortRows() {
	sort.Slice(r.Rows, func(i, j int) bool {
		a, b := r.Rows[i].Values, r.Rows[j].Values
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
}
