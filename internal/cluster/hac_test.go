package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// pointsDissim builds a dissimilarity over 1-D points.
func pointsDissim(pts []float64) func(i, j int) float64 {
	return func(i, j int) float64 { return math.Abs(pts[i] - pts[j]) }
}

func TestRunSingleLinkage(t *testing.T) {
	// Two tight groups far apart: {0,1,2} near 0 and {3,4} near 100.
	pts := []float64{0, 1, 2, 100, 101}
	d, err := Run(len(pts), pointsDissim(pts), Single, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 4 {
		t.Fatalf("merges = %d, want 4 (full dendrogram)", len(d.Merges))
	}
	// After 3 merges the partition must be the two groups.
	cl := d.Clusters(3)
	if len(cl) != 2 {
		t.Fatalf("clusters after 3 merges = %v", cl)
	}
	if len(cl[0]) != 3 || len(cl[1]) != 2 {
		t.Fatalf("cluster sizes = %v", cl)
	}
	// The first merge must fuse the closest pair at distance 1.
	if d.Merges[0].Dissimilarity != 1 {
		t.Fatalf("first merge dissimilarity = %g", d.Merges[0].Dissimilarity)
	}
	// The final merge bridges the two groups: single linkage distance 98.
	last := d.Merges[3]
	if last.Dissimilarity != 98 {
		t.Fatalf("single-linkage bridge = %g, want 98", last.Dissimilarity)
	}
}

func TestCompleteLinkageBridge(t *testing.T) {
	pts := []float64{0, 1, 2, 100, 101}
	d, err := Run(len(pts), pointsDissim(pts), Complete, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Complete linkage bridge distance = farthest pair = 101.
	last := d.Merges[len(d.Merges)-1]
	if last.Dissimilarity != 101 {
		t.Fatalf("complete-linkage bridge = %g, want 101", last.Dissimilarity)
	}
}

func TestAverageLinkage(t *testing.T) {
	pts := []float64{0, 2, 10}
	d, err := Run(len(pts), pointsDissim(pts), Average, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First merge {0,1} at 2; then UPGMA distance to item 2 is (10+8)/2 = 9.
	if d.Merges[1].Dissimilarity != 9 {
		t.Fatalf("UPGMA = %g, want 9", d.Merges[1].Dissimilarity)
	}
}

func TestWardOnSquaredEuclidean(t *testing.T) {
	pts := []float64{0, 1, 10}
	sq := func(i, j int) float64 { v := pts[i] - pts[j]; return v * v }
	d, err := Run(len(pts), sq, Ward, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ward merges the tight pair first.
	m0 := d.Merges[0]
	if !(contains(m0.MembersA, 0) && contains(m0.MembersB, 1) ||
		contains(m0.MembersA, 1) && contains(m0.MembersB, 0)) {
		t.Fatalf("ward first merge = %v", m0)
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestConstraintStopsMerging(t *testing.T) {
	pts := []float64{0, 1, 2, 3}
	// Items 0,1 are "red"; 2,3 are "blue"; only same-color merges allowed.
	color := []int{0, 0, 1, 1}
	can := func(a, b []int) bool {
		for _, x := range a {
			for _, y := range b {
				if color[x] != color[y] {
					return false
				}
			}
		}
		return true
	}
	d, err := Run(len(pts), pointsDissim(pts), Single, can)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Merges) != 2 {
		t.Fatalf("merges = %d, want 2 (constraint blocks the bridge)", len(d.Merges))
	}
	cl := d.Clusters(len(d.Merges))
	if len(cl) != 2 {
		t.Fatalf("final clusters = %v", cl)
	}
}

func TestRunDegenerate(t *testing.T) {
	if d, err := Run(0, nil, Single, nil); err != nil || len(d.Merges) != 0 {
		t.Fatal("empty input must yield empty dendrogram")
	}
	if d, err := Run(1, nil, Single, nil); err != nil || len(d.Merges) != 0 {
		t.Fatal("singleton input must yield empty dendrogram")
	}
	if _, err := Run(-1, nil, Single, nil); err == nil {
		t.Fatal("negative n must fail")
	}
}

func TestClustersZeroMerges(t *testing.T) {
	d := &Dendrogram{N: 3}
	cl := d.Clusters(0)
	if len(cl) != 3 {
		t.Fatalf("initial partition = %v", cl)
	}
}

func TestAllLinkagesProduceFullDendrogram(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	pts := make([]float64, 12)
	for i := range pts {
		pts[i] = r.Float64() * 100
	}
	for _, l := range Linkages() {
		d, err := Run(len(pts), pointsDissim(pts), l, nil)
		if err != nil {
			t.Fatalf("%s: %v", l, err)
		}
		if len(d.Merges) != len(pts)-1 {
			t.Fatalf("%s: merges = %d, want %d", l, len(d.Merges), len(pts)-1)
		}
		// every item ends in exactly one cluster
		final := d.Clusters(len(d.Merges))
		if len(final) != 1 || len(final[0]) != len(pts) {
			t.Fatalf("%s: final partition = %v", l, final)
		}
		if l.String() == "?" {
			t.Fatalf("missing String for %d", l)
		}
	}
}

// Property: dendrogram merge dissimilarities are monotone non-decreasing
// for single, complete, average and weighted-average linkage (the
// reducible linkages; centroid/median can produce inversions).
func TestMonotoneDendrogram(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 4 + r.Intn(8)
		pts := make([]float64, n)
		for i := range pts {
			pts[i] = r.Float64() * 50
		}
		for _, l := range []Linkage{Single, Complete, Average, WeightedAverage} {
			d, err := Run(n, pointsDissim(pts), l, nil)
			if err != nil {
				return false
			}
			last := math.Inf(-1)
			for _, m := range d.Merges {
				if m.Dissimilarity < last-1e-9 {
					return false
				}
				last = m.Dissimilarity
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestPearsonDissimilarity(t *testing.T) {
	a := map[string]float64{"m1": 1, "m2": 2, "m3": 3}
	b := map[string]float64{"m1": 2, "m2": 4, "m3": 6} // perfectly correlated
	if got := PearsonDissimilarity(a, b); math.Abs(got) > 1e-12 {
		t.Fatalf("correlated dissimilarity = %g, want 0", got)
	}
	c := map[string]float64{"m1": 3, "m2": 2, "m3": 1} // anti-correlated
	if got := PearsonDissimilarity(a, c); math.Abs(got-2) > 1e-12 {
		t.Fatalf("anti-correlated dissimilarity = %g, want 2", got)
	}
	// insufficient overlap
	d := map[string]float64{"m9": 1}
	if got := PearsonDissimilarity(a, d); got != 2 {
		t.Fatalf("no-overlap dissimilarity = %g, want 2", got)
	}
	// zero variance
	e := map[string]float64{"m1": 1, "m2": 1, "m3": 1}
	if got := PearsonDissimilarity(a, e); got != 2 {
		t.Fatalf("zero-variance dissimilarity = %g, want 2", got)
	}
}

func TestEuclideanDissimilarity(t *testing.T) {
	a := map[string]float64{"x": 3}
	b := map[string]float64{"y": 4}
	if got := EuclideanDissimilarity(a, b); got != 25 {
		t.Fatalf("squared euclidean = %g, want 25", got)
	}
	if got := EuclideanDissimilarity(a, a); got != 0 {
		t.Fatalf("self dissimilarity = %g", got)
	}
}

// Property: Pearson dissimilarity is symmetric and within [0,2].
func TestPearsonProperties(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		keys := []string{"a", "b", "c", "d", "e"}
		mk := func() map[string]float64 {
			m := make(map[string]float64)
			for _, k := range keys {
				if r.Intn(3) > 0 {
					m[k] = float64(r.Intn(5) + 1)
				}
			}
			return m
		}
		x, y := mk(), mk()
		dxy := PearsonDissimilarity(x, y)
		dyx := PearsonDissimilarity(y, x)
		return math.Abs(dxy-dyx) < 1e-12 && dxy >= -1e-12 && dxy <= 2+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
