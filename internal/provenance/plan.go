package provenance

import "sort"

// This file implements the incremental candidate-evaluation engine: a
// Plan compiles an aggregated expression once per summarization step
// into the flat arena (arena.go) with annotation→node and
// annotation→tensor dependency indexes in CSR form, and a Probe
// compiles the structural delta of one candidate merge (members ↦ fresh
// annotation) without materializing the candidate expression.
//
// Soundness rests on the homomorphism identity Eval(h(p), v') =
// Eval(p, v'∘h): a candidate h renames only the probed members, so its
// evaluation equals the shared expression's evaluation with the
// members' truths substituted by the merged group's φ-truth. BaseEval
// fills a flat per-node value table for the valuation in one forward
// pass; a Probe precomputes the ascending list of nodes on a path to a
// member occurrence and re-evaluates only those, reading every clean
// sibling from the table.

// annIndex is a CSR index from dense annotation ids to int32 spans
// (node ids or tensor ids).
type annIndex struct {
	off  []int32 // len = numAnns+1
	flat []int32
}

// span returns the ids indexed under annotation id.
func (ix *annIndex) span(id int32) []int32 {
	return ix.flat[ix.off[id]:ix.off[id+1]]
}

// buildIndex flattens per-annotation lists into CSR form.
func buildIndex(lists [][]int32) annIndex {
	ix := annIndex{off: make([]int32, len(lists)+1)}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	ix.flat = make([]int32, 0, total)
	for i, l := range lists {
		ix.flat = append(ix.flat, l...)
		ix.off[i+1] = int32(len(ix.flat))
	}
	return ix
}

// planTensor mirrors one tensor of the planned expression with its
// compiled polynomial root and the Simplify merge key.
type planTensor struct {
	root  int32
	prov  Expr
	value float64
	count int
	group Annotation
	key   string // prov.Key() + "|" + group, Simplify's merge key
	size  int    // prov.Size()
}

// Plan is a compiled evaluation structure over one aggregated expression
// (*Agg), built once per summarization step and shared read-only by every
// candidate probe of the step's cohort. All mutable evaluation state
// lives in PlanScratch, so one Plan serves concurrent evaluators.
type Plan struct {
	agg     *Agg
	ar      *Arena
	tensors []planTensor

	varNodes      annIndex // ann id → ascending Var node ids
	annTensors    annIndex // ann id → ascending tensor ids whose polynomial mentions it
	groupTensors  annIndex // ann id → ascending tensor ids with that group
	scalarTensors []int32  // ascending tensor ids of the scalar ("") coordinate

	size int
}

// PlanScratch holds the per-evaluator mutable state of plan evaluation:
// flat node-value tables indexed by arena node id. Each concurrent
// evaluator owns one scratch; the Plan and its Probes stay read-only
// after construction.
type PlanScratch = ArenaScratch

// NewPlan compiles e into a Plan. It returns nil when e cannot be planned
// — it is not an aggregated expression (*Agg), or a polynomial contains
// an unknown node type — and callers must fall back to full evaluation.
func NewPlan(e Expression) *Plan {
	g, ok := e.(*Agg)
	if !ok || g == nil {
		return nil
	}
	ar := CompileArena(g)
	if ar == nil {
		return nil
	}
	p := &Plan{
		agg:     g,
		ar:      ar,
		tensors: make([]planTensor, len(g.Tensors)),
		size:    g.Size(),
	}
	numAnns := ar.NumAnns()
	varsBy := make([][]int32, numAnns)
	for id := range ar.kind {
		if ar.kind[id] == nodeVar {
			a := ar.ann[id]
			varsBy[a] = append(varsBy[a], int32(id))
		}
	}
	tensBy := make([][]int32, numAnns)
	grpBy := make([][]int32, numAnns)
	scratch := make(map[Annotation]struct{})
	for i, t := range g.Tensors {
		p.tensors[i] = planTensor{
			root: ar.tensors[i].root, prov: t.Prov, value: t.Value, count: t.Count,
			group: t.Group, key: t.Prov.Key() + "|" + string(t.Group), size: t.Prov.Size(),
		}
		clear(scratch)
		t.Prov.CollectAnns(scratch)
		for a := range scratch {
			id, _ := ar.AnnID(a)
			tensBy[id] = append(tensBy[id], int32(i))
		}
		if t.Group == "" {
			p.scalarTensors = append(p.scalarTensors, int32(i))
		} else {
			id, _ := ar.AnnID(t.Group)
			grpBy[id] = append(grpBy[id], int32(i))
		}
	}
	p.varNodes = buildIndex(varsBy)
	p.annTensors = buildIndex(tensBy)
	p.groupTensors = buildIndex(grpBy)
	return p
}

// Expr returns the expression the plan was compiled from.
func (p *Plan) Expr() *Agg { return p.agg }

// Arena returns the plan's compiled arena.
func (p *Plan) Arena() *Arena { return p.ar }

// Annotations returns the interned annotations in dense-id order; the
// backing slice must not be modified.
func (p *Plan) Annotations() []Annotation { return p.ar.Annotations() }

// AnnID returns the dense id of ann and whether it occurs in the
// expression (as a polynomial variable or a group coordinate).
func (p *Plan) AnnID(a Annotation) (int32, bool) { return p.ar.AnnID(a) }

// NewScratch returns a scratch sized for the plan.
func (p *Plan) NewScratch() *PlanScratch { return p.ar.NewScratch() }

// NewTruths returns a truth bitset sized for the plan's annotations.
func (p *Plan) NewTruths() Bitset { return p.ar.NewTruths() }

// FillTruths sets bits to truth(ann) for every annotation of the plan.
func (p *Plan) FillTruths(bits Bitset, truth func(Annotation) bool) {
	p.ar.FillTruths(bits, truth)
}

// tensorsOfAnn returns the ascending tensor ids whose polynomial
// mentions a.
func (p *Plan) tensorsOfAnn(a Annotation) []int32 {
	if id, ok := p.ar.AnnID(a); ok {
		return p.annTensors.span(id)
	}
	return nil
}

// tensorsOfGroup returns the ascending tensor ids whose group is g.
func (p *Plan) tensorsOfGroup(g Annotation) []int32 {
	if g == "" {
		return p.scalarTensors
	}
	if id, ok := p.ar.AnnID(g); ok {
		return p.groupTensors.span(id)
	}
	return nil
}

// BaseEval evaluates the planned expression under the truth bitset (the
// 0/1 assignment of the step's extended valuation), filling the
// scratch's node-value table in one forward pass as a side effect. The
// returned vector is op-for-op identical to Agg.Eval: tensors fold in
// slice order, a group's first nonzero contribution replaces the
// identity placeholder.
func (p *Plan) BaseEval(bits Bitset, s *PlanScratch) Vector {
	return p.ar.Eval(bits, s)
}

// foldEntry is one tensor of an affected coordinate's re-fold: either an
// unaffected tensor evaluated from the base table (sub == false) or a
// rewritten tensor evaluated with member substitution (sub == true).
// Entries are ordered by the candidate expression's tensor key, so the
// fold replays the exact combine order of the materialized candidate.
type foldEntry struct {
	key   string
	value float64
	root  int32
	sub   bool
}

type groupFold struct {
	group   Annotation
	entries []foldEntry
}

// Probe is the compiled structural delta of one candidate merge: mapping
// Members to the fresh annotation NewAnn over the plan's expression. It
// is read-only after construction and safe for concurrent evaluation
// with per-evaluator scratches.
type Probe struct {
	// Members are the merged (current) annotations; NewAnn the summary
	// annotation they map to.
	Members []Annotation
	NewAnn  Annotation
	// Size is the candidate expression's provenance size, equal to
	// expr.Apply(MergeMapping(NewAnn, Members...)).Size() without the
	// Apply.
	Size int
	// RenamesGroup reports whether the merge renames at least one vector
	// coordinate (some member is a group annotation of the expression).
	// Such candidates change the result's coordinate space, so they can
	// never reuse the base evaluation even when no truth changes.
	RenamesGroup bool

	plan       *Plan
	dirty      Bitset       // per node: lies on a path to a member occurrence
	dirtyNodes []int32      // ascending dirty node ids (children before parents)
	removed    []Annotation // coordinates that disappear (member groups)
	folds      []groupFold  // re-fold programs for the affected coordinates
}

// Probe compiles the candidate that merges members into newAnn. It
// returns nil when the probe cannot be compiled soundly: newAnn already
// occurs in the expression (rewritten tensors could merge with existing
// ones), or a reserved annotation is involved. Callers fall back to
// materializing the candidate.
func (p *Plan) Probe(members []Annotation, newAnn Annotation) *Probe {
	if newAnn == "" || newAnn == Zero || newAnn == One {
		return nil
	}
	if _, ok := p.ar.AnnID(newAnn); ok {
		return nil
	}
	for _, m := range members {
		if m == Zero || m == One || m == newAnn {
			return nil
		}
	}
	// Member sets are merge-arity sized (2-3 annotations), so linear
	// scans beat hashed sets throughout the compile.
	memberOf := func(a Annotation) bool {
		for _, m := range members {
			if a == m {
				return true
			}
		}
		return false
	}

	// Affected tensors: polynomial mentions a member, or the group is a
	// member. Ascending tensor ids preserve the expression's tensor order
	// for value merging below.
	affectedMark := make([]bool, len(p.tensors))
	var affected []int32
	mark := func(tid int32) {
		if !affectedMark[tid] {
			affectedMark[tid] = true
			affected = append(affected, tid)
		}
	}
	for _, m := range members {
		for _, tid := range p.tensorsOfAnn(m) {
			mark(tid)
		}
		for _, tid := range p.tensorsOfGroup(m) {
			mark(tid)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

	// Rewrite affected tensors through the merge and re-merge them by
	// Simplify's key, combining values in tensor order — the exact work
	// Apply + Simplify would do, restricted to the affected tensors. The
	// representative root evaluates a rewritten tensor's polynomial:
	// Eval(h(q), v') = Eval(q, v'∘h), and merged duplicates share a key,
	// hence an EvalNat value.
	rename := func(a Annotation) Annotation {
		if memberOf(a) {
			return newAnn
		}
		return a
	}
	type rewritten struct {
		root  int32
		value float64
		count int
		group Annotation
		key   string
		size  int
	}
	var rews []rewritten
	rewIdx := make(map[string]int)
	size := p.size
	for _, tid := range affected {
		t := &p.tensors[tid]
		size -= t.size
		prov := SimplifyExpr(t.prov.MapAnn(rename))
		if c, ok := prov.(Const); ok && c.N == 0 {
			continue
		}
		group := t.group
		if group != "" && memberOf(group) {
			group = newAnn
		}
		key := prov.Key() + "|" + string(group)
		if i, ok := rewIdx[key]; ok {
			rews[i].value = p.agg.Agg.Combine(rews[i].value, t.value)
			rews[i].count += t.count
		} else {
			rewIdx[key] = len(rews)
			rews = append(rews, rewritten{
				root: t.root, value: t.value, count: t.count,
				group: group, key: key, size: prov.Size(),
			})
		}
	}
	for i := range rews {
		size += rews[i].size
	}

	// Coordinates that disappear: member groups lose all their tensors to
	// NewAnn.
	var removed []Annotation
	for _, m := range members {
		if len(p.tensorsOfGroup(m)) > 0 {
			removed = append(removed, m)
		}
	}

	// Re-fold programs for every affected coordinate: the unaffected
	// survivors of the group plus the rewrittens that land in it, sorted
	// by the candidate's tensor key (the materialized candidate's
	// per-group combine order).
	outGroups := make(map[Annotation]struct{})
	for _, tid := range affected {
		g := p.tensors[tid].group
		if g != "" && memberOf(g) {
			continue // coordinate moves to newAnn, covered by its rewrittens
		}
		outGroups[g] = struct{}{}
	}
	for i := range rews {
		outGroups[rews[i].group] = struct{}{}
	}
	names := make([]Annotation, 0, len(outGroups))
	for g := range outGroups {
		names = append(names, g)
	}
	sort.Slice(names, func(i, j int) bool { return names[i] < names[j] })
	folds := make([]groupFold, 0, len(names))
	for _, g := range names {
		var entries []foldEntry
		if g != newAnn {
			for _, tid := range p.tensorsOfGroup(g) {
				if affectedMark[tid] {
					continue
				}
				t := &p.tensors[tid]
				entries = append(entries, foldEntry{key: t.key, value: t.value, root: t.root})
			}
		}
		for i := range rews {
			if rews[i].group == g {
				entries = append(entries, foldEntry{key: rews[i].key, value: rews[i].value, root: rews[i].root, sub: true})
			}
		}
		sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
		folds = append(folds, groupFold{group: g, entries: entries})
	}

	// Dirty marking: every node on a path from a member occurrence to its
	// tensor root is re-evaluated under substitution; everything else
	// reads the base table. The ascending dirty-node list drives an
	// iterative bottom-up re-evaluation (post-order ids put children
	// before parents).
	dirty := NewBitset(p.ar.NumNodes())
	var dirtyNodes []int32
	for _, m := range members {
		if id, ok := p.ar.AnnID(m); ok {
			for _, nd := range p.varNodes.span(id) {
				for n := nd; n != -1 && !dirty.Get(n); n = p.ar.parent[n] {
					dirty.Set(n)
					dirtyNodes = append(dirtyNodes, n)
				}
			}
		}
	}
	sort.Slice(dirtyNodes, func(i, j int) bool { return dirtyNodes[i] < dirtyNodes[j] })

	renamesGroup := false
	for _, m := range members {
		if len(p.tensorsOfGroup(m)) > 0 {
			renamesGroup = true
			break
		}
	}

	return &Probe{
		Members:      append([]Annotation(nil), members...),
		NewAnn:       newAnn,
		Size:         size,
		RenamesGroup: renamesGroup,
		plan:         p,
		dirty:        dirty,
		dirtyNodes:   dirtyNodes,
		removed:      removed,
		folds:        folds,
	}
}

// CandEval returns the candidate expression's evaluation vector under the
// candidate's extended valuation, without materializing the candidate:
// unaffected coordinates are copied from base (the plan's BaseEval for
// the same valuation, whose node table must still be current in s),
// removed coordinates are dropped, and affected coordinates are
// re-folded with only the dirty nodes re-evaluated. Unlike the old
// recursive engine, no truth assignment is needed here: BaseEval's
// forward pass filled every node value, so the only new input is
// mergedN, the merged group's φ-truth.
func (pr *Probe) CandEval(mergedN int, base Vector, s *PlanScratch) Vector {
	out := make(Vector, len(base)+1)
	for k, v := range base {
		out[k] = v
	}
	for _, g := range pr.removed {
		delete(out, g)
	}
	ar := pr.plan.ar
	// Substituted re-evaluation of the dirty nodes, bottom-up in one
	// pass: dirty kids read s.sub, clean kids read the base table. A
	// dirty Var is a member occurrence and evaluates to the merged
	// group's truth.
	for _, id := range pr.dirtyNodes {
		switch ar.kind[id] {
		case nodeVar:
			s.sub[id] = mergedN
		case nodeConst:
			s.sub[id] = int(ar.constN[id])
		case nodeSum:
			v := 0
			for _, k := range ar.kids[ar.kidOff[id]:ar.kidOff[id+1]] {
				if pr.dirty.Get(k) {
					v += s.sub[k]
				} else {
					v += s.vals[k]
				}
			}
			s.sub[id] = v
		case nodeProd:
			v := 1
			for _, k := range ar.kids[ar.kidOff[id]:ar.kidOff[id+1]] {
				if pr.dirty.Get(k) {
					v *= s.sub[k]
				} else {
					v *= s.vals[k]
				}
				if v == 0 {
					break
				}
			}
			s.sub[id] = v
		case nodeCmp:
			k := ar.kids[ar.kidOff[id]]
			n := s.vals[k]
			if pr.dirty.Get(k) {
				n = s.sub[k]
			}
			lhs := 0.0
			if n != 0 {
				lhs = ar.value[id]
			}
			v := 0
			if ar.op[id].holds(lhs, ar.bound[id]) {
				v = 1
			}
			s.sub[id] = v
		}
	}
	s.SubtreeEvals += uint64(len(pr.dirtyNodes))
	agg := pr.plan.agg.Agg
	for fi := range pr.folds {
		f := &pr.folds[fi]
		acc := agg.Identity()
		contributed := false
		for i := range f.entries {
			en := &f.entries[i]
			var n int
			if en.sub && pr.dirty.Get(en.root) {
				n = s.sub[en.root]
			} else {
				n = s.vals[en.root]
			}
			if n == 0 {
				continue
			}
			contrib := agg.Scale(en.value, n)
			if contributed {
				acc = agg.Combine(acc, contrib)
			} else {
				acc = contrib
				contributed = true
			}
		}
		out[f.group] = acc
	}
	return out
}
